"""Cluster-wide Docker client facade.

The paper's NODE MANAGERs talk to their local daemon through docker-java
(Section V-B); the MONITOR addresses containers by id without caring where
they live.  :class:`DockerClient` provides that same shape: one object,
backed by one :class:`~repro.dockersim.daemon.DockerDaemon` per node, with a
container-id -> node index so every verb can be routed.

It is also where replica bookkeeping happens: ``run_replica`` registers the
new container with its :class:`~repro.cluster.microservice.Microservice`,
``remove_replica`` and OOM reaping deregister it.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.container import Container
from repro.cluster.resources import ResourceVector
from repro.dockersim.daemon import DockerDaemon
from repro.dockersim.stats import StatsSample
from repro.errors import CapacityError, ClusterError, ContainerNotFound
from repro.workloads.requests import Request


class DockerClient:
    """Routes Docker verbs to per-node daemons and keeps replica registries."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.daemons: dict[str, DockerDaemon] = {
            name: DockerDaemon(node) for name, node in cluster.nodes.items()
        }
        self._location: dict[str, str] = {}  # container_id -> node name

    # ------------------------------------------------------------------
    # Node lifecycle (dynamic-fleet ablation support)
    # ------------------------------------------------------------------
    def track_node(self, name: str) -> None:
        """Start managing a node added to the cluster after construction."""
        if name in self.daemons:
            raise ClusterError(f"node {name!r} already tracked")
        self.daemons[name] = DockerDaemon(self.cluster.node(name))

    def untrack_node(self, name: str) -> None:
        """Stop managing a decommissioned node."""
        self.daemons.pop(name, None)
        self._location = {cid: n for cid, n in self._location.items() if n != name}

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def run_replica(
        self,
        service_name: str,
        node_name: str,
        *,
        cpu_request: float,
        mem_limit: float,
        net_rate: float,
        now: float,
        boot_delay: float | None = None,
    ) -> Container:
        """Start a new replica of ``service_name`` on ``node_name``."""
        service = self.cluster.service(service_name)
        daemon = self._daemon(node_name)
        delay = self.cluster.overheads.container_boot_delay if boot_delay is None else boot_delay
        if service.spec.stateful and service.active_replicas():
            # A stateful replica cannot serve until it has pulled a copy of
            # the state from its peers (Section IV-B) — the first replica is
            # exempt (it *is* the state).
            delay += service.spec.state_size_mb / self.cluster.overheads.state_transfer_mb_per_s
        replica_index = service.next_replica_index()
        container = daemon.run(
            service_name,
            replica_index,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
            now=now,
            boot_delay=delay,
            max_concurrency=service.spec.max_concurrency,
            disk_quota=service.spec.disk_quota,
            # Allocated by the run's cluster so ids are per-run deterministic.
            container_id=self.cluster.next_container_id(service_name, replica_index),
        )
        service.track(container)
        self._location[container.container_id] = node_name
        return container

    def update(
        self,
        container_id: str,
        *,
        cpu_request: float | None = None,
        mem_limit: float | None = None,
        net_rate: float | None = None,
    ) -> Container:
        """Vertically rescale a container wherever it lives."""
        return self._daemon_of(container_id).update(
            container_id,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
        )

    def remove_replica(self, container_id: str, now: float) -> list[Request]:
        """Remove a replica and deregister it from its service."""
        daemon = self._daemon_of(container_id)
        container = daemon.node.containers[container_id]
        casualties = daemon.remove(container_id, now)
        service = self.cluster.services.get(container.service)
        if service is not None and container_id in service.replicas:
            service.forget(container_id)
        self._location.pop(container_id, None)
        return casualties

    def migrate_replica(self, container_id: str, target_node: str, now: float) -> Container:
        """Live-migrate a container to another machine (extension).

        The container keeps its in-flight requests but freezes for the
        checkpoint/restore window; the target must fit the container's
        reservation or the move is rejected.
        """
        source = self._daemon_of(container_id)
        target = self._daemon(target_node)
        if source.node.name == target_node:
            return source.node.containers[container_id]
        container = source.node.containers.get(container_id)
        if container is None:
            raise ContainerNotFound(f"unknown container {container_id}")
        reservation = ResourceVector(container.cpu_request, container.mem_limit, container.net_rate)
        if not target.node.can_fit(reservation):
            raise CapacityError(
                f"node {target_node} cannot fit {container_id} ({reservation})"
            )
        source.node.detach_container(container_id)
        container.freeze(self.cluster.overheads.migration_freeze)
        target.node.add_container(container)
        self._location[container_id] = target_node
        return container

    def stats(self, container_id: str, now: float) -> StatsSample:
        """``docker stats`` for one container."""
        return self._daemon_of(container_id).stats(container_id, now)

    def node_name_of(self, container_id: str) -> str:
        """Which node hosts the container."""
        try:
            return self._location[container_id]
        except KeyError:
            raise ContainerNotFound(f"unknown container {container_id}") from None

    def reap(self, now: float) -> list[Container]:
        """Reap OOM-killed containers cluster-wide; deregister their replicas."""
        corpses: list[Container] = []
        for name in sorted(self.daemons):
            for container in self.daemons[name].reap_oom_kills(now):
                service = self.cluster.services.get(container.service)
                if service is not None and container.container_id in service.replicas:
                    service.forget(container.container_id)
                self._location.pop(container.container_id, None)
                corpses.append(container)
        return corpses

    # ------------------------------------------------------------------
    def _daemon(self, node_name: str) -> DockerDaemon:
        try:
            return self.daemons[node_name]
        except KeyError:
            raise ClusterError(f"no daemon for node {node_name!r}") from None

    def _daemon_of(self, container_id: str) -> DockerDaemon:
        return self._daemon(self.node_name_of(container_id))
