"""Simulated clock.

The whole system advances in fixed steps of ``dt`` seconds.  Components never
read wall-clock time; they receive the :class:`SimClock` and query
:attr:`SimClock.now`.  This is what makes runs fully deterministic and lets
experiments compress an hour of "cluster time" into seconds of real time.
"""

from __future__ import annotations

from repro.errors import ClockError


class SimClock:
    """Monotonic discrete-time clock.

    Parameters
    ----------
    dt:
        Step width in simulated seconds.  Must be positive.
    start:
        Initial time in simulated seconds (defaults to 0).
    """

    __slots__ = ("_dt", "_now", "_step")

    def __init__(self, dt: float = 0.5, start: float = 0.0):
        if dt <= 0:
            raise ClockError(f"dt must be positive, got {dt}")
        if start < 0:
            raise ClockError(f"start must be non-negative, got {start}")
        self._dt = float(dt)
        self._now = float(start)
        self._step = 0

    @property
    def dt(self) -> float:
        """Step width in simulated seconds."""
        return self._dt

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def step(self) -> int:
        """Number of completed steps since the start of the run."""
        return self._step

    def advance(self) -> float:
        """Advance the clock by one step and return the new time."""
        self._step += 1
        # Recompute from the step index instead of accumulating ``+= dt`` so
        # that long runs do not drift from floating-point error.
        self._now = self._step * self._dt
        return self._now

    def elapsed_since(self, t: float) -> float:
        """Seconds elapsed since time ``t`` (negative if ``t`` is ahead)."""
        return self._now - t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.3f}, dt={self._dt}, step={self._step})"
