"""Named, seeded random-number streams.

Every stochastic decision in the simulator draws from a *named* child stream
of one root seed.  Two properties follow:

* a :class:`~repro.config.SimulationConfig` (which carries the root seed)
  fully determines a run, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers, because each name hashes to an independent child
  sequence rather than sharing one global generator.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """Factory for independent, reproducible random streams.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always yields the same generator object, so a consumer
        can re-fetch its stream cheaply instead of caching it.
        """
        if name not in self._streams:
            # Derive the child seed from (root seed, name) via SeedSequence
            # so streams are statistically independent of one another.
            entropy = [self._seed] + [ord(c) for c in name]
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Create a child factory namespaced under ``name``.

        Used when a subsystem (e.g. one microservice's load generator) wants
        to hand out further sub-streams without risking name collisions.
        """
        child_seed = int(self.stream(f"__spawn__/{name}").integers(0, 2**63 - 1))
        return RngStreams(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
