"""Deterministic discrete-time simulation kernel.

Exports the clock, named RNG streams, the timer/event queue, and the
time-stepped engine that drives every other subsystem.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine, SimActor
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.rng import RngStreams

__all__ = [
    "SimClock",
    "Engine",
    "SimActor",
    "EventQueue",
    "ScheduledEvent",
    "RngStreams",
]
