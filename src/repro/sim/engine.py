"""Time-stepped simulation engine.

The engine owns the :class:`~repro.sim.clock.SimClock` and an ordered list of
*actors*.  Each step it:

1. advances the clock by ``dt``,
2. calls every actor's :meth:`SimActor.on_step` in registration order, and
3. fires all scheduled events that have come due.

Registration order is therefore the phase order of the simulation; the
experiment runner registers components in the order documented in
``DESIGN.md`` (arrivals -> routing -> compute -> network -> lifecycle ->
metrics).  Keeping the ordering explicit — rather than relying on dict
iteration or priorities — is what makes runs reproducible and the data flow
auditable.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.instrument import when_enabled
from repro.obs.profiler import PhaseProfiler
from repro.sanitizer.api import Sanitizer
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue, ScheduledEvent


@runtime_checkable
class SimActor(Protocol):
    """Anything the engine drives once per step."""

    def on_step(self, clock: SimClock) -> None:
        """Advance this component by one step ending at ``clock.now``."""
        ...  # pragma: no cover - protocol stub


class StepCounter(Protocol):
    """A monotone counter handle (structurally, a telemetry ``Counter``).

    The engine depends only on this shape so :mod:`repro.sim` stays free of
    any telemetry import; the runner attaches real instruments via
    :meth:`Engine.attach_counters`.
    """

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter."""
        ...  # pragma: no cover - protocol stub


class Engine:
    """Drives actors and scheduled events on a shared clock.

    Parameters
    ----------
    dt:
        Step width in simulated seconds.
    profiler:
        Optional :class:`~repro.obs.PhaseProfiler`.  When set, every step
        times each registered actor (plus clock advance and event firing)
        individually; when ``None`` (the default) the hot loop contains no
        timing calls at all.  Profiler timings never feed back into the
        simulation — they only populate reports.
    sanitizer:
        Optional :class:`~repro.sanitizer.Sanitizer`.  A recording
        sanitizer brackets every step (baseline snapshot, per-actor
        write-set diff, post-events conservation audit); ``None`` or a
        disabled sanitizer keeps the exact unsanitized hot loop.  Mutually
        exclusive with ``profiler`` — sanitized steps are not
        representative timings.
    """

    def __init__(
        self,
        dt: float = 0.5,
        profiler: PhaseProfiler | None = None,
        sanitizer: Sanitizer | None = None,
    ):
        self.clock = SimClock(dt=dt)
        self.events = EventQueue()
        self.profiler = profiler
        self.sanitizer = when_enabled(sanitizer)
        if self.profiler is not None and self.sanitizer is not None:
            raise SimulationError(
                "engine cannot run with both a profiler and a recording sanitizer"
            )
        self._actors: list[tuple[str, SimActor]] = []
        self._actor_labels: list[str] = []
        self._running = False
        self._step_counter: StepCounter | None = None
        self._event_counter: StepCounter | None = None

    def attach_counters(self, *, steps: StepCounter, events: StepCounter) -> None:
        """Wire telemetry counters for steps executed and events fired.

        Optional: when never called (the default), the hot loop carries a
        single ``is None`` check per step and no counter work.
        """
        self._step_counter = steps
        self._event_counter = events

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_actor(self, name: str, actor: SimActor) -> None:
        """Register ``actor`` to run each step, after all earlier actors."""
        if self._running:
            raise SimulationError("cannot add actors while the engine is running")
        if any(existing == name for existing, _ in self._actors):
            raise SimulationError(f"duplicate actor name: {name!r}")
        if not isinstance(actor, SimActor):
            raise SimulationError(f"actor {name!r} does not implement on_step()")
        self._actors.append((name, actor))
        # Profiler phase labels are minted at registration so the profiled
        # step loop never formats strings per step (HOT004).
        self._actor_labels.append(f"actor:{name}")

    @property
    def actor_names(self) -> list[str]:
        """Names of registered actors, in phase order."""
        return [name for name, _ in self._actors]

    # ------------------------------------------------------------------
    # Scheduling helpers (thin wrappers that inject the clock)
    # ------------------------------------------------------------------
    def call_at(self, due: float, callback: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``due``."""
        return self.events.schedule_at(due, callback, label=label)

    def call_after(self, delay: float, callback: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        return self.events.schedule_after(self.clock.now, delay, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Run exactly one simulation step."""
        self._running = True
        try:
            if self.profiler is not None:
                self._step_profiled(self.profiler)
            elif self.sanitizer is not None:
                self._step_sanitized(self.sanitizer)
            else:
                self.clock.advance()
                for _, actor in self._actors:
                    actor.on_step(self.clock)
                fired = self.events.fire_due(self.clock.now)
                if self._step_counter is not None:
                    self._step_counter.inc()
                    if fired and self._event_counter is not None:
                        self._event_counter.inc(fired)
        finally:
            self._running = False

    def _step_profiled(self, profiler: PhaseProfiler) -> None:
        """One step with per-phase wall-time attribution."""
        timer = profiler.timer
        profiler.count_step()
        self.clock.advance()
        for (_, actor), label in zip(self._actors, self._actor_labels):
            start = timer()
            actor.on_step(self.clock)
            profiler.observe(label, timer() - start)
        start = timer()
        fired = self.events.fire_due(self.clock.now)
        profiler.observe("events", timer() - start)
        if self._step_counter is not None:
            self._step_counter.inc()
            if fired and self._event_counter is not None:
                self._event_counter.inc(fired)

    def _step_sanitized(self, sanitizer: Sanitizer) -> None:
        """One step bracketed by sanitizer checks (observation only)."""
        self.clock.advance()
        now = self.clock.now
        sanitizer.begin_step(now=now, step=self.clock.step)
        for name, actor in self._actors:
            actor.on_step(self.clock)
            sanitizer.after_actor(name=name, now=now)
        fired = self.events.fire_due(now)
        sanitizer.end_step(now=now, next_due=self.events.next_due())
        if self._step_counter is not None:
            self._step_counter.inc()
            if fired and self._event_counter is not None:
                self._event_counter.inc(fired)

    def run_for(self, duration: float) -> int:
        """Run until at least ``duration`` more simulated seconds pass.

        Returns the number of steps executed.
        """
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        deadline = self.clock.now + duration
        steps = 0
        # ``now`` is recomputed from the step index, so strict comparison
        # against the deadline is stable (no accumulated drift).
        while self.clock.now + self.clock.dt <= deadline + 1e-9:
            self.step()
            steps += 1
        return steps

    def run_steps(self, n: int) -> None:
        """Run exactly ``n`` steps."""
        if n < 0:
            raise SimulationError(f"step count must be non-negative, got {n}")
        for _ in range(n):
            self.step()
