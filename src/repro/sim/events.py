"""Scheduled-event queue used alongside the fixed-step loop.

Most of the simulator is time-stepped, but a few things are naturally
one-shot timers: container boot completion, delayed scaling actions, the
monitor's next tick.  The :class:`EventQueue` holds those callbacks and the
engine fires every event whose due time has been reached at the end of each
step.

Ties are broken by insertion order, which keeps runs deterministic even when
many events share a due time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ClockError


@dataclass(order=True)
class ScheduledEvent:
    """An event waiting in the queue.

    Sort key is ``(due, seq)`` so equal-time events fire in insertion order.
    """

    due: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when it comes due."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`ScheduledEvent`, keyed by due time."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule_at(self, due: float, callback: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to fire once time ``due`` is reached."""
        if due < 0:
            raise ClockError(f"cannot schedule event at negative time {due}")
        event = ScheduledEvent(due=float(due), seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, now: float, delay: float, callback: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` seconds after ``now``."""
        if delay < 0:
            raise ClockError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(now + delay, callback, label=label)

    def next_due(self) -> float | None:
        """Due time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].due if self._heap else None

    def fire_due(self, now: float) -> int:
        """Fire every live event with ``due <= now``; return how many fired.

        Events scheduled *by* a firing callback for a due time that has
        already passed fire within the same call, so cascades settle before
        the next simulation step.
        """
        fired = 0
        while self._heap and self._heap[0].due <= now:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.callback()
            fired += 1
        return fired
