"""Experiment harness: canonical configs for every paper figure, the runner
that wires platform + workload + policy into one simulation, and the
Section III microbenchmarks."""

from repro.experiments.configs import (
    ExperimentSpec,
    bitbrains,
    cpu_bound,
    disk_bound,
    make_policy,
    memory_bound,
    mixed,
    network_bound,
)
from repro.experiments.runner import Simulation, run_experiment  # lint: disable=API002(back-compat re-export of the deprecated shim)
from repro.experiments.spec import (
    SWEEP_SCHEMA,
    RunSpec,
    SweepSpec,
    derive_shard_seed,
)
from repro.experiments.suite import (
    ReproductionResult,
    render_reproduction,
    reproduce_evaluation,
)

__all__ = [
    "ExperimentSpec",
    "Simulation",
    "run_experiment",
    "RunSpec",
    "SweepSpec",
    "derive_shard_seed",
    "SWEEP_SCHEMA",
    "make_policy",
    "cpu_bound",
    "memory_bound",
    "mixed",
    "network_bound",
    "disk_bound",
    "bitbrains",
    "ReproductionResult",
    "reproduce_evaluation",
    "render_reproduction",
]
