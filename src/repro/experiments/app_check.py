"""Self-contained application-graph validation (``make app-bench``).

Checks the two halves of the application-graph contract end to end, at
the paper's cluster shape (24 machines: 19 workers + 5 load balancers):

1. **Backend parity** — the canonical three-tier app (frontend -> api ->
   2x db) produces a **byte-identical** summary dict on the array backend
   and the scalar object backend, per monitor policy.  Graph routing,
   back-pressure holds, and ingress accounting all live in shared code,
   so the array engine must remain a faster spelling of the same run.
2. **Back-pressure direction** — capping the db tier's replicas turns it
   into a bottleneck whose damage must surface *upstream*: the ingress
   (frontend) end-to-end latency and failure rate must degrade
   monotonically as the cap tightens.  This is the observable the whole
   AppRequest lifecycle exists to produce.

Writes a machine-readable report (default ``BENCH_app_graph.json`` —
uploaded as a CI artifact next to the other BENCH files).  Exits non-zero
on any failed check.

Run directly::

    PYTHONPATH=src python -m repro.experiments.app_check --out BENCH_app_graph.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import ClusterConfig, SimulationConfig
from repro.experiments.runner import Simulation
from repro.metrics.sla import Sla, evaluate_sla
from repro.metrics.summary import RunSummary
from repro.workloads import CPU_BOUND, LowBurstLoad, ServiceLoad, three_tier_app

#: Paper testbed shape: 19 worker nodes (24 machines minus 5 LBs).
WORKER_NODES = 19

#: Simulated seconds per probe run.
DURATION = 150.0

#: Ingress load on the frontend tier (req/s, +/-30 % swell).
INGRESS_RATE = 8.0

#: Policies exercised for backend parity (the paper's headline pair).
PARITY_POLICIES = ("kubernetes", "hybrid")

#: db replica caps for the back-pressure staircase, loosest first.
DB_CAPS = (16, 2, 1)

#: End-to-end response-time target the staircase is scored against.  The
#: headline observable is the *violation rate* — ingress requests that
#: failed or blew the target — because completed-only latency collapses
#: once timeouts dominate (the survivors are the fast requests).
SLA_TARGET_S = 8.0


def _build(policy: str, backend: str, db_max_replicas: int) -> Simulation:
    app = three_tier_app(db_max_replicas=db_max_replicas)
    return Simulation.build(
        config=SimulationConfig(cluster=ClusterConfig(worker_nodes=WORKER_NODES), seed=7),
        loads=[
            ServiceLoad(
                service="frontend",
                profile=CPU_BOUND,
                pattern=LowBurstLoad(base=INGRESS_RATE, amplitude=0.3, period=120.0),
            )
        ],
        policy=policy,
        workload_label="app-check/three-tier",
        app=app,
        backend=backend,
    )


def _run_summary(policy: str, backend: str, db_max_replicas: int) -> tuple[RunSummary, float]:
    """One probe run; returns (summary, ingress SLO-violation percentage)."""
    simulation = _build(policy, backend, db_max_replicas)
    simulation.run(DURATION)
    sla_report = evaluate_sla(simulation.collector, Sla(response_time_target=SLA_TARGET_S))
    violation_pct = 100.0 * (1.0 - sla_report.adherence)
    return simulation.summary(), violation_pct


def _app_row(summary: RunSummary) -> dict:
    """The ingress-view numbers a degradation staircase is judged on."""
    app = summary.app
    assert app is not None  # graph runs always carry the ingress block
    return {
        "ingress_requests": app.ingress_requests,
        "internal_requests": app.internal_requests,
        "avg_response_s": round(app.avg_response_time, 6),
        "p95_response_s": round(app.p95_response_time, 6),
        "p99_response_s": round(app.p99_response_time, 6),
        "failed_pct": round(app.percent_failed, 6),
    }


def run_check(out: Path) -> int:
    """Execute every check, write the report, return a process exit code."""
    checks: dict[str, bool] = {}

    # -- 1. object/array parity, per policy ----------------------------
    parity: dict[str, dict] = {}
    for policy in PARITY_POLICIES:
        reference, _ = _run_summary(policy, "object", 16)
        candidate, _ = _run_summary(policy, "array", 16)
        identical = reference.to_dict() == candidate.to_dict()
        checks[f"parity_{policy}"] = identical
        parity[policy] = {
            "identical": identical,
            "summary": _app_row(reference),
        }

    # -- 2. back-pressure staircase (object backend, hybrid policy) ----
    staircase = []
    for cap in DB_CAPS:
        summary, violation_pct = _run_summary("hybrid", "object", cap)
        staircase.append(
            {
                "db_max_replicas": cap,
                "slo_violation_pct": round(violation_pct, 6),
                **_app_row(summary),
            }
        )
    degraded = all(
        later["slo_violation_pct"] >= earlier["slo_violation_pct"]
        for earlier, later in zip(staircase, staircase[1:])
    )
    measurable = staircase[-1]["slo_violation_pct"] > staircase[0]["slo_violation_pct"]
    checks["backpressure_monotone"] = degraded
    checks["backpressure_measurable"] = measurable

    report = {
        "schema": "repro.app-check/1",
        "worker_nodes": WORKER_NODES,
        "duration": DURATION,
        "ingress_rate": INGRESS_RATE,
        "sla_target_s": SLA_TARGET_S,
        "parity_policies": list(PARITY_POLICIES),
        "parity": parity,
        "db_caps": list(DB_CAPS),
        "backpressure": staircase,
        "checks": checks,
        "ok": all(checks.values()),
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for name, passed in sorted(checks.items()):
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    healthy, capped = staircase[0], staircase[-1]
    print(
        f"app-bench: three-tier at {WORKER_NODES} workers; capping db "
        f"{DB_CAPS[0]} -> {DB_CAPS[-1]} moved ingress SLO violations "
        f"{healthy['slo_violation_pct']:.2f}% -> {capped['slo_violation_pct']:.2f}% "
        f"(failures {healthy['failed_pct']:.2f}% -> {capped['failed_pct']:.2f}%) -> {out}"
    )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.experiments.app_check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_app_graph.json"),
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return run_check(args.out)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
