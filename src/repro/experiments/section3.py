"""Section III microbenchmarks: horizontal vs. vertical scaling.

These reproduce the motivating experiments behind hybrid scaling:

* :func:`cpu_scaling_curve` — Figure 2.  A CPU-bound microservice receives a
  fixed batch of client requests while co-located with progrium stress; the
  equivalent-resource deployment is replicated over 1..16 machines.  The
  paper finds response times *increase* with replica count (contention +
  per-replica application overhead + a logarithmic distribution cost),
  while the vertically scaled equivalent shows negligible overhead.
* :func:`memory_scaling_table` — Section III-B.  Vertical and horizontal
  memory scaling are equivalent until the working set forces swapping; the
  per-replica application footprint makes horizontally scaled deployments
  swap earlier for the same total memory.
* :func:`network_scaling_curve` — Figure 3.  A fixed 100 Mbit/s total
  bandwidth allocation split over 1..16 machines alongside a network-hogging
  stress container: execution time *drops* with replicas as tx-queue
  contention is relieved, tapering off around 8 replicas.

Each function drives the substrate directly with manual allocations — no
autoscaler in the loop, exactly like the paper's Section III methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.cluster.stress import CpuStressContainer, NetStressContainer
from repro.config import OverheadModel
from repro.errors import ExperimentError
from repro.workloads.requests import Request, RequestState

#: Default replica counts measured in Figures 2 and 3.
DEFAULT_REPLICA_COUNTS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ScalingPoint:
    """One point on a Figure 2 / Figure 3 curve."""

    replicas: int
    avg_response_time: float
    completed: int
    failed: int


@dataclass(frozen=True)
class MemoryScenario:
    """One row of the Section III-B memory comparison."""

    label: str
    replicas: int
    mem_limit_per_replica: float
    avg_response_time: float
    swapped: bool


def _drain(
    nodes: list[Node],
    containers: list[Container],
    requests: list[Request],
    *,
    dt: float = 0.25,
    max_time: float = 3600.0,
) -> tuple[float, int, int]:
    """Step nodes until every request finishes; return (avg_rt, ok, failed)."""
    now = 0.0
    while now < max_time:
        now += dt
        for node in nodes:
            node.step(now, dt)
        if all(r.is_finished for r in requests):
            break
    completed = [r for r in requests if r.state is RequestState.SUCCEEDED]
    failed = [r for r in requests if r.state is RequestState.FAILED]
    still_running = [r for r in requests if not r.is_finished]
    if still_running:
        raise ExperimentError(
            f"microbenchmark did not converge: {len(still_running)} requests unfinished"
        )
    avg = sum(r.response_time or 0.0 for r in completed) / len(completed) if completed else 0.0
    return avg, len(completed), len(failed)


def _spread(total: int, parts: int) -> list[int]:
    """Split ``total`` items into ``parts`` near-equal groups."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


# ----------------------------------------------------------------------
# Figure 2: CPU scaling
# ----------------------------------------------------------------------
def cpu_scaling_point(
    replicas: int,
    *,
    total_requests: int = 640,
    cpu_per_request: float = 0.25,
    overheads: OverheadModel | None = None,
) -> ScalingPoint:
    """Measure one replica count of the Figure 2 experiment.

    Resource equivalence follows the paper's construction: the microservice
    deployment always owns *half* the CPU time of one 4-core machine in
    total.  With ``N`` replicas on ``N`` machines, each replica gets 1024
    shares against a stress container holding ``(2N - 1) * 1024``, i.e. a
    ``1/2N`` slice each.
    """
    if replicas < 1:
        raise ExperimentError("replicas must be >= 1")
    overheads = overheads or OverheadModel()
    capacity = ResourceVector(4.0, 8192.0, 1000.0)
    nodes = []
    services = []
    for i in range(replicas):
        node = Node(f"bench-{i:02d}", capacity, overheads)
        replica = Container(
            service="microbench",
            replica_index=i,
            cpu_request=1.0,  # 1024 shares
            mem_limit=1024.0,
            net_rate=10.0,
            max_concurrency=64,
            overheads=overheads,
        )
        stress = CpuStressContainer(
            f"stress-{i:02d}",
            cpu_request=float(2 * replicas - 1),  # (2N-1) * 1024 shares
            overheads=overheads,
        )
        node.add_container(replica, enforce_capacity=False)
        node.add_container(stress, enforce_capacity=False)
        nodes.append(node)
        services.append(replica)

    # The distribution overhead the LB would stamp (Section III-A's
    # logarithmic replication cost).
    overhead_factor = 1.0 + overheads.distribution_log_coeff * math.log(replicas) if replicas > 1 else 1.0

    requests = []
    for count, replica in zip(_spread(total_requests, replicas), services):
        for _ in range(count):
            request = Request(
                service="microbench",
                arrival_time=0.0,
                cpu_work=cpu_per_request,
                mem_footprint=2.0,
                net_mbits=0.0,
                timeout=3600.0,
            )
            replica.accept(request, 0.0, overhead_factor=overhead_factor)
            requests.append(request)

    avg, ok, failed = _drain(nodes, services, requests)
    return ScalingPoint(replicas=replicas, avg_response_time=avg, completed=ok, failed=failed)


def cpu_scaling_curve(
    replica_counts: tuple[int, ...] = DEFAULT_REPLICA_COUNTS,
    **kwargs: Any,
) -> list[ScalingPoint]:
    """Figure 2: response time vs. replica count under CPU contention."""
    return [cpu_scaling_point(n, **kwargs) for n in replica_counts]


# ----------------------------------------------------------------------
# Section III-B: memory scaling
# ----------------------------------------------------------------------
def memory_scaling_scenario(
    label: str,
    replicas: int,
    mem_limit_per_replica: float,
    *,
    total_requests: int = 640,
    mem_per_request: float = 36.0,
    cpu_per_request: float = 0.05,
    concurrency_per_replica: int = 8,
    overheads: OverheadModel | None = None,
) -> MemoryScenario:
    """One memory configuration: N replicas sharing one machine.

    All replicas are co-located (as memory has "no contention ... between
    Docker containers", Section III-B) with equal CPU shares overall, so the
    *only* variable across equivalent-resource scenarios is how the memory
    limit is partitioned — one 512 MiB container vs. two 256 MiB containers.
    """
    overheads = overheads or OverheadModel()
    capacity = ResourceVector(4.0, 8192.0, 1000.0)
    node = Node("membench-node", capacity, overheads)
    services = []
    for i in range(replicas):
        replica = Container(
            service="membench",
            replica_index=i,
            cpu_request=2.0 / replicas,  # equal total shares across scenarios
            mem_limit=mem_limit_per_replica,
            net_rate=10.0,
            max_concurrency=concurrency_per_replica,
            overheads=overheads,
        )
        node.add_container(replica, enforce_capacity=False)
        services.append(replica)

    requests = []
    for count, replica in zip(_spread(total_requests, replicas), services):
        for _ in range(count):
            request = Request(
                service="membench",
                arrival_time=0.0,
                cpu_work=cpu_per_request,
                mem_footprint=mem_per_request,
                net_mbits=0.0,
                timeout=3600.0,
            )
            replica.accept(request, 0.0)
            requests.append(request)

    # Track swapping as we drain (it is transient state).
    swapped = False
    now = 0.0
    dt = 0.25
    while now < 3600.0 and not all(r.is_finished for r in requests):
        now += dt
        node.step(now, dt)
        swapped = swapped or any(c.is_swapping for c in services if c.is_active)

    completed = [r for r in requests if r.state is RequestState.SUCCEEDED]
    avg = sum(r.response_time or 0.0 for r in completed) / len(completed) if completed else float("inf")
    return MemoryScenario(
        label=label,
        replicas=replicas,
        mem_limit_per_replica=mem_limit_per_replica,
        avg_response_time=avg,
        swapped=swapped,
    )


def memory_scaling_table(overheads: OverheadModel | None = None) -> list[MemoryScenario]:
    """Section III-B's findings as comparable scenarios.

    * vertical 512 vs. horizontal 2x256: same total memory, but the
      duplicated application footprint makes the horizontal variant swap
      ("horizontally scaled instances are much more likely to swap compared
      to a single vertically scaled instance, given the same amount of
      memory");
    * horizontal 2x448 vs. vertical 512: once neither swaps, the request
      times are near-equal ("negligible differences");
    * vertical 1024 vs. 512: "increasing memory limits did not speed up
      processing times";
    * vertical 224: a limit below the working set forces swap and
      performance "drastically degrades".
    """
    return [
        memory_scaling_scenario("vertical-512", 1, 512.0, overheads=overheads),
        memory_scaling_scenario("horizontal-2x256", 2, 256.0, overheads=overheads),
        memory_scaling_scenario("horizontal-2x448", 2, 448.0, overheads=overheads),
        memory_scaling_scenario("vertical-1024", 1, 1024.0, overheads=overheads),
        memory_scaling_scenario("vertical-starved-224", 1, 224.0, overheads=overheads),
    ]


# ----------------------------------------------------------------------
# Figure 3: network scaling
# ----------------------------------------------------------------------
def network_scaling_point(
    replicas: int,
    *,
    total_bandwidth: float = 100.0,
    total_mbits: float = 3000.0,
    requests_per_replica: int = 10,
    overheads: OverheadModel | None = None,
) -> ScalingPoint:
    """Measure one replica count of the Figure 3 experiment.

    The microservice's *total* shaped bandwidth is fixed (100 Mbit/s in the
    paper); with ``N`` replicas each machine shapes its class to ``100/N``
    while a stress container hogs the remaining NIC — so the only thing
    that changes with ``N`` is how thinly the tx queues are loaded.
    """
    if replicas < 1:
        raise ExperimentError("replicas must be >= 1")
    overheads = overheads or OverheadModel()
    # net_cpu coupling off for the microbenchmark: iperf saturates links,
    # not cores (the paper's stress hogs CPU via a separate container).
    capacity = ResourceVector(4.0, 8192.0, 1000.0)
    per_replica_rate = total_bandwidth / replicas
    nodes = []
    services = []
    for i in range(replicas):
        node = Node(f"net-{i:02d}", capacity, overheads)
        replica = Container(
            service="netbench",
            replica_index=i,
            cpu_request=2.0,
            mem_limit=1024.0,
            net_rate=per_replica_rate,
            max_concurrency=64,
            overheads=overheads,
        )
        stress = NetStressContainer(
            f"netstress-{i:02d}",
            net_rate=capacity.network - per_replica_rate,
            offered_mbps=capacity.network,
            overheads=overheads,
        )
        node.add_container(replica, enforce_capacity=False)
        # Hard-shape the measured class (ceil == rate): the paper allocates
        # the microservice exactly its bandwidth share via tc.
        node.nic.reshape(replica.container_id, rate=per_replica_rate)
        node.nic.qdisc.change_class(
            node.nic.iptables.class_of(replica.container_id),
            rate=per_replica_rate,
            ceil=per_replica_rate,
        )
        node.add_container(stress, enforce_capacity=False)
        nodes.append(node)
        services.append(replica)

    per_replica_mbits = total_mbits / replicas
    requests = []
    for replica in services:
        for _ in range(requests_per_replica):
            request = Request(
                service="netbench",
                arrival_time=0.0,
                cpu_work=0.0,
                mem_footprint=1.0,
                net_mbits=per_replica_mbits / requests_per_replica,
                timeout=3600.0,
            )
            replica.accept(request, 0.0)
            requests.append(request)

    avg, ok, failed = _drain(nodes, services, requests)
    return ScalingPoint(replicas=replicas, avg_response_time=avg, completed=ok, failed=failed)


def network_scaling_curve(
    replica_counts: tuple[int, ...] = DEFAULT_REPLICA_COUNTS,
    **kwargs: Any,
) -> list[ScalingPoint]:
    """Figure 3: execution time vs. replica count at fixed total bandwidth."""
    return [network_scaling_point(n, **kwargs) for n in replica_counts]
