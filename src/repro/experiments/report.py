"""Result formatting: the same rows/series the paper's figures report.

Figures 6-8 and 10 are bar charts of (algorithm -> avg response time) and
(algorithm -> % failed, split by failure class); Figures 2-3 are curves of
(replica count -> response time); Figure 9 is the trace itself.  These
helpers render each as aligned text tables so a benchmark run prints
something directly comparable to the paper page.
"""

from __future__ import annotations

from repro.experiments.section3 import MemoryScenario, ScalingPoint
from repro.metrics.summary import RunSummary


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal aligned-column table (no external deps)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(summaries: dict[str, RunSummary], title: str = "") -> str:
    """Figures 6-8/10 style: one row per algorithm, both panels' y-axes.

    Rows show the *user-traffic* view: byte-identical to the run totals
    for single-service runs; for application-graph runs the latency and
    failure columns read the ingress-only block so internal tier-to-tier
    calls are not double-counted as user traffic.
    """
    headers = [
        "algorithm",
        "avg resp (s)",
        "p95 (s)",
        "failed %",
        "removal %",
        "connection %",
        "availability",
        "scale ups",
        "scale downs",
        "vertical ops",
    ]
    rows = []
    for name in sorted(summaries):
        s = summaries[name]
        rows.append(
            [
                name,
                f"{s.user_avg_response_time:.3f}",
                f"{s.user_p95_response_time:.3f}",
                f"{s.user_percent_failed:.2f}",
                f"{s.percent_removal_failures:.2f}",
                f"{s.percent_connection_failures:.2f}",
                f"{s.user_availability:.5f}",
                str(s.horizontal_scale_ups),
                str(s.horizontal_scale_downs),
                str(s.vertical_scale_ops),
            ]
        )
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def scaling_curve_table(points: list[ScalingPoint], title: str = "") -> str:
    """Figures 2-3 style: replica count vs. response/execution time."""
    headers = ["replicas", "avg time (s)", "completed", "failed"]
    rows = [
        [str(p.replicas), f"{p.avg_response_time:.2f}", str(p.completed), str(p.failed)]
        for p in points
    ]
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def memory_table(scenarios: list[MemoryScenario], title: str = "") -> str:
    """Section III-B style: configuration vs. response time and swapping."""
    headers = ["scenario", "replicas", "limit/replica (MiB)", "avg time (s)", "swapped"]
    rows = [
        [
            m.label,
            str(m.replicas),
            f"{m.mem_limit_per_replica:.0f}",
            f"{m.avg_response_time:.2f}" if m.avg_response_time != float("inf") else "inf",
            "yes" if m.swapped else "no",
        ]
        for m in scenarios
    ]
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def trace_series_table(times: list[float], cpu: list[float], mem: list[float], *, stride: int = 1, title: str = "") -> str:
    """Figure 9 style: the aggregate trace as (time, cpu%, mem%) rows."""
    headers = ["t (s)", "cpu %", "mem %"]
    rows = [
        [f"{times[i]:.0f}", f"{cpu[i]:.2f}", f"{100.0 * mem[i]:.2f}"]
        for i in range(0, len(times), max(1, stride))
    ]
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table
