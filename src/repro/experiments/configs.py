"""Canonical experiment configurations for every figure in Section VI.

Each factory returns an :class:`ExperimentSpec` describing one cell of the
paper's evaluation matrix: the microservice fleet, the per-service load
pattern (low-burst or high-burst), and the cluster/monitor settings.  The
four algorithms are built by :func:`make_policy`, so one spec can be run
under each algorithm for a like-for-like comparison — the paper's method.

Scale: the paper runs 15 microservices on 19 worker nodes for an hour.
Full scale reproduces that (set ``REPRO_FULL=1``); the default is a
proportionally shrunk configuration (6 services, 10 nodes, 240 s) so the
complete benchmark suite executes in minutes.  Shrinking preserves the
*ratios* that drive the dynamics (offered load vs. capacity per service),
which is what the orderings depend on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable

from repro.cluster.microservice import MicroserviceSpec
from repro.config import ClusterConfig, SimulationConfig
from repro.core.policy import AutoscalingPolicy
from repro.core.registry import (
    ALGORITHMS,
    EXTENSION_ALGORITHMS,
    make_policy,
    resolve_policy,
)
from repro.errors import ExperimentError
from repro.experiments.spec import SEED_MODES, RunSpec, SweepSpec, derive_shard_seed
from repro.metrics.summary import RunSummary
from repro.workloads.bitbrains import bitbrains_service_loads, generate_bitbrains_trace
from repro.workloads.generator import ServiceLoad
from repro.workloads.graph import ApplicationSpec, three_tier_app
from repro.workloads.registry import (
    register_app,
    register_workload,
    registered_workloads,
    resolve_workload,
)
from repro.workloads.patterns import HighBurstLoad, LoadPattern, LowBurstLoad
from repro.workloads.profiles import (
    CPU_BOUND,
    DISK_BOUND,
    MEMORY_BOUND,
    MIXED,
    NETWORK_BOUND,
    MicroserviceProfile,
)

#: Client-load burst regimes from Section VI.
BURSTS = ("low", "high")

__all__ = [
    "ALGORITHMS",
    "EXTENSION_ALGORITHMS",
    "BURSTS",
    "WORKLOAD_FACTORIES",
    "ExperimentSpec",
    "Scale",
    "full_scale",
    "make_policy",
    "resolve_policy",
    "cpu_bound",
    "memory_bound",
    "mixed",
    "network_bound",
    "disk_bound",
    "bitbrains",
    "three_tier",
]


def full_scale() -> bool:
    """True when ``REPRO_FULL=1``: paper-scale fleets and durations."""
    return os.environ.get("REPRO_FULL", "") == "1"


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs (shrunk by default, paper-scale under
    ``REPRO_FULL=1``).

    ``rate_scale`` keeps the offered-load-to-cluster-capacity ratio
    identical across scales: the default config runs 6 services on 10 nodes
    (0.6 services/node), the paper 15 on 19 (0.79 services/node), so
    paper-scale per-service rates are trimmed by the ratio of those
    densities — the orderings depend on relative pressure, not head count.
    """

    n_services: int
    worker_nodes: int
    duration: float
    bitbrains_vms: int
    rate_scale: float = 1.0

    @classmethod
    def current(cls) -> "Scale":
        if full_scale():
            return cls(
                n_services=15,
                worker_nodes=19,
                duration=3600.0,
                bitbrains_vms=500,
                rate_scale=(19 / 15) / (10 / 6),
            )
        return cls(n_services=6, worker_nodes=10, duration=240.0, bitbrains_vms=100)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable cell of the evaluation matrix."""

    label: str
    config: SimulationConfig
    specs: tuple[MicroserviceSpec, ...]
    loads: tuple[ServiceLoad, ...]
    duration: float
    #: Application graph for multi-tier cells; ``specs`` must be empty
    #: then (the fleet is derived from the graph's tiers).
    app: ApplicationSpec | None = None

    def to_run_spec(
        self,
        policy: str,
        *,
        seed: int | None = None,
        duration: float | None = None,
    ) -> RunSpec:
        """This cell as a canonical :class:`~repro.experiments.spec.RunSpec`.

        ``seed`` defaults to the cell's own config seed (the "shared"
        derivation); ``duration`` defaults to the cell's full duration.
        """
        return RunSpec(
            label=self.label,
            policy=policy,
            seed=self.config.seed if seed is None else seed,
            duration=self.duration if duration is None else duration,
            config=self.config,
            fleet=self.specs,
            loads=self.loads,
            app=self.app,
        )

    def to_sweep(
        self,
        algorithms: tuple[str, ...] = ALGORITHMS,
        *,
        seed_mode: str = "per_shard",
    ) -> SweepSpec:
        """This cell fanned out over ``algorithms`` as a sweep.

        ``seed_mode`` follows the spec codec's documented derivations:
        ``"per_shard"`` draws an independent seed per algorithm from this
        cell's base seed via :func:`~repro.experiments.spec.derive_shard_seed`;
        ``"shared"`` replays the identical arrival sequence under every
        algorithm (the paper's like-for-like method, and the historic
        ``run_all`` behaviour).
        """
        if seed_mode not in SEED_MODES:
            raise ExperimentError(f"seed_mode must be one of {SEED_MODES}, got {seed_mode!r}")
        base = self.config.seed
        shards = tuple(
            self.to_run_spec(
                name,
                seed=base
                if seed_mode == "shared"
                else derive_shard_seed(base, f"{self.label}/{name}"),
            )
            for name in algorithms
        )
        return SweepSpec(shards=shards, seed_mode=seed_mode)

    def run(self, policy: AutoscalingPolicy | str) -> RunSummary:
        """Run this experiment under one algorithm (object or name).

        Registered names route through the canonical spec layer; policy
        *objects* cannot be serialised into a spec, so they are wired
        directly into a :class:`~repro.experiments.runner.Simulation`.
        """
        if isinstance(policy, str):
            return self.to_run_spec(policy).run()
        from repro.experiments.runner import Simulation

        simulation = Simulation.build(
            config=self.config,
            specs=list(self.specs),
            loads=list(self.loads),
            policy=resolve_policy(policy, self.config),
            workload_label=self.label,
            app=self.app,
        )
        return simulation.run(self.duration)

    def run_all(
        self,
        algorithms: tuple[str, ...] = ALGORITHMS,
        *,
        seed_mode: str = "per_shard",
        parallel: int = 1,
        cache_dir: str | None = None,
    ) -> dict[str, RunSummary]:
        """Run the same workload under every algorithm, keyed by name.

        Each algorithm now gets its own derived seed by default (the old
        behaviour silently replayed one seed everywhere; pass
        ``seed_mode="shared"`` for that bit-compatible like-for-like
        replay).  ``parallel``/``cache_dir`` are forwarded to
        :meth:`~repro.experiments.spec.SweepSpec.run`.
        """
        result = self.to_sweep(algorithms, seed_mode=seed_mode).run(
            parallel=parallel, cache_dir=cache_dir
        )
        return dict(zip(algorithms, result.summaries))


# ----------------------------------------------------------------------
# Workload construction helpers
# ----------------------------------------------------------------------
def _base_config(scale: Scale, seed: int) -> SimulationConfig:
    return SimulationConfig(
        cluster=ClusterConfig(worker_nodes=scale.worker_nodes),
        seed=seed,
    )


def _pattern(burst: str, base: float, peak: float, index: int, n: int, period: float = 150.0) -> LoadPattern:
    """Per-service pattern with staggered phases so services peak at
    different times (15 independent tenants do not spike in lockstep)."""
    if burst not in BURSTS:
        raise ExperimentError(f"burst must be one of {BURSTS}, got {burst!r}")
    phase = period * index / max(1, n)
    if burst == "low":
        return LowBurstLoad(base=base, amplitude=0.3, period=period, phase=phase)
    return HighBurstLoad(base=base * 0.5, peak=peak, period=period, duty=0.3, phase=phase, ramp=6.0)


def _fleet(
    label: str,
    profile: MicroserviceProfile,
    burst: str,
    *,
    base_rate: float,
    peak_rate: float,
    seed: int,
    mem_limit: float = 512.0,
    net_rate: float = 50.0,
    timeout: float | None = None,
    scale_rates: bool = True,
) -> ExperimentSpec:
    """Build one evaluation fleet.

    ``scale_rates`` applies :attr:`Scale.rate_scale` so cluster-relative
    CPU pressure is identical across scales.  Memory-driven workloads set
    it False: their differentiating mechanism (per-replica working set vs.
    the fixed memory limit) depends on *absolute* per-service rates, which
    must therefore be preserved at paper scale.
    """
    scale = Scale.current()
    config = _base_config(scale, seed)
    if timeout is not None:
        profile = replace(profile, timeout=timeout)
    rate_factor = scale.rate_scale if scale_rates else 1.0
    specs = []
    loads = []
    for i in range(scale.n_services):
        name = f"{profile.name}-{i:02d}"
        specs.append(
            MicroserviceSpec(
                name=name,
                cpu_request=0.5,
                mem_limit=mem_limit,
                net_rate=net_rate,
                min_replicas=1,
                max_replicas=16,
                target_utilization=0.5,
                profile=profile.name,
            )
        )
        loads.append(
            ServiceLoad(
                service=name,
                profile=profile,
                pattern=_pattern(
                    burst,
                    base_rate * rate_factor,
                    peak_rate * rate_factor,
                    i,
                    scale.n_services,
                ),
            )
        )
    return ExperimentSpec(
        label=f"{label}/{burst}-burst",
        config=config,
        specs=tuple(specs),
        loads=tuple(loads),
        duration=scale.duration,
    )


# ----------------------------------------------------------------------
# The paper's experiment matrix (Figures 6-8, 10)
# ----------------------------------------------------------------------
def cpu_bound(burst: str = "low", seed: int = 0) -> ExperimentSpec:
    """Figure 6: CPU-bound microservices under low/high burst."""
    return _fleet("cpu", CPU_BOUND, burst, base_rate=11.0, peak_rate=18.0, seed=seed)


def memory_bound(burst: str = "low", seed: int = 0) -> ExperimentSpec:
    """Section VI: memory-bound loads — the workload on which "the
    Kubernetes and HYSCALE_CPU algorithms are unable to handle ... and
    crash" (their results are omitted from the paper's figures; our
    ablation bench shows why)."""
    return _fleet("memory", MEMORY_BOUND, burst, base_rate=4.0, peak_rate=12.0, seed=seed, scale_rates=False)


def mixed(burst: str = "low", seed: int = 0) -> ExperimentSpec:
    """Figure 7: mixed CPU+memory microservices under low/high burst."""
    return _fleet("mixed", MIXED, burst, base_rate=9.0, peak_rate=18.0, seed=seed, scale_rates=False)


def network_bound(burst: str = "low", seed: int = 0) -> ExperimentSpec:
    """Figure 8: network-bound microservices under low/high burst.

    Replica bandwidth allocations (80 Mbit/s) comfortably cover the stable
    load; the high-burst spikes need more, which only scaling can provide.
    """
    return _fleet(
        "network", NETWORK_BOUND, burst, base_rate=5.0, peak_rate=22.0, seed=seed, net_rate=100.0
    )


def disk_bound(burst: str = "low", seed: int = 0) -> ExperimentSpec:
    """Extension: disk-bound microservices (the resource type the paper
    declares supported but leaves unimplemented).

    Per-replica spindles saturate around 150 MB/s and thrash under
    interleaved streams, so the dedicated disk scaler should win the same
    way the network scaler wins Figure 8.
    """
    return _fleet("disk", DISK_BOUND, burst, base_rate=12.0, peak_rate=36.0, seed=seed)


def bitbrains(seed: int = 0) -> ExperimentSpec:
    """Figure 10: replay of the (synthetic) Bitbrains Rnd trace."""
    scale = Scale.current()
    config = _base_config(scale, seed)
    trace = generate_bitbrains_trace(
        n_vms=scale.bitbrains_vms,
        duration=scale.duration,
        interval=max(10.0, scale.duration / 120.0),
        seed=seed,
    )
    # Trace rates follow the cluster density (rate_scale): the Bitbrains
    # replay aggregates many VMs per service, so its memory pressure tracks
    # *relative* load — validated against Figure 10 at both scales.
    loads = bitbrains_service_loads(
        trace, n_services=scale.n_services, base_rate=10.0 * scale.rate_scale, profile=MIXED
    )
    specs = tuple(
        MicroserviceSpec(
            name=load.service,
            cpu_request=0.5,
            mem_limit=512.0,
            net_rate=50.0,
            min_replicas=1,
            max_replicas=16,
            target_utilization=0.5,
            profile="mixed",
        )
        for load in loads
    )
    return ExperimentSpec(
        label="bitbrains/rnd",
        config=config,
        specs=specs,
        loads=tuple(loads),
        duration=scale.duration,
    )


def three_tier(
    burst: str = "low",
    seed: int = 0,
    *,
    db_max_replicas: int = 16,
) -> ExperimentSpec:
    """Extension: a frontend -> api -> db application graph.

    One ingress tier (``frontend``) takes the client load; every user
    request fans out one ``api`` call which fans out two ``db`` calls, so
    the monitor has to scale tiers it never sees arrivals for.  Capping
    ``db_max_replicas`` turns the db tier into a bottleneck whose
    back-pressure is visible in the frontend's end-to-end percentiles.
    """
    scale = Scale.current()
    config = _base_config(scale, seed)
    app = three_tier_app(db_max_replicas=db_max_replicas)
    loads = (
        ServiceLoad(
            service="frontend",
            profile=CPU_BOUND,
            pattern=_pattern(burst, 6.0 * scale.rate_scale, 14.0 * scale.rate_scale, 0, 1),
        ),
    )
    return ExperimentSpec(
        label=f"three-tier/{burst}-burst",
        config=config,
        specs=(),
        loads=loads,
        duration=scale.duration,
        app=app,
    )


# ----------------------------------------------------------------------
# Registration: the one workload namespace
# ----------------------------------------------------------------------
# The canonical spelling of the evaluation matrix is the instance-held
# registry in :mod:`repro.workloads.registry` (mirroring the policy
# registry).  These calls are the single source of truth; the module-level
# mapping below is a read-only view kept for backward compatibility.
register_workload("cpu", cpu_bound)
register_workload("memory", memory_bound)
register_workload("mixed", mixed)
register_workload("network", network_bound)
register_workload("disk", disk_bound)
register_workload("bitbrains", bitbrains, takes_burst=False)
register_app("three-tier", three_tier)

#: Workload name -> (factory, takes_burst).  Deprecated spelling: a view
#: over :func:`repro.workloads.registry.registered_workloads` kept so old
#: call sites keep working byte-for-byte.  New code should use
#: :func:`repro.workloads.registry.resolve_workload`.
WORKLOAD_FACTORIES: dict[str, tuple[Callable[..., ExperimentSpec], bool]] = {
    name: resolve_workload(name) for name in registered_workloads()
}
