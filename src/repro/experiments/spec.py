"""The canonical run description: one spelling for "one experiment".

Before this layer existed the same knobs were spelled three ways —
``run_experiment(...)`` keyword arguments, :class:`ExperimentSpec` fields,
and ``hyscale-repro run`` flags.  :class:`RunSpec` collapses them into a
single frozen value object that (a) runs directly, (b) serialises to a
canonical ``repro.sweep/1`` JSON document, and (c) is therefore picklable,
content-addressable, and safe to ship to a worker process unchanged.

:class:`SweepSpec` is the grid form: an explicit, ordered shard list over
``(workload, burst, algorithm, seed)``.  Its order *is* the merge order of
:class:`~repro.parallel.SweepExecutor`, which is how a parallel sweep stays
byte-identical to a serial one.

Seed derivation (the spec codec's contract)
-------------------------------------------
A sweep derives each shard's seed from the grid's base seed in one of two
documented modes, recorded in the codec as ``seed_mode``:

* ``"per_shard"`` (default) — every shard draws an independent seed from
  the base seed through a named :class:`~repro.sim.rng.RngStreams` stream::

      RngStreams(base_seed).stream(f"sweep/{label}/{policy}").integers(0, 2**63 - 1)

  so no two shards share an entropy universe by accident (the old
  ``run_all`` silently reused one seed for every algorithm).
* ``"shared"`` — every shard runs under the base seed verbatim.  This is
  the paper's like-for-like method: the same arrival sequence replayed
  under each algorithm, and the bit-compatible fallback for the historic
  behaviour.

Only registered policy *names* are allowed in a spec (not policy objects):
a name is serialisable, a closure is not.  Use
:func:`repro.core.registry.register_policy` first if you need a custom
policy inside a sweep.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.cluster.microservice import MicroserviceSpec
from repro.config import ClusterConfig, OverheadModel, SimulationConfig
from repro.errors import ExperimentError
from repro.metrics.summary import RunSummary
from repro.obs.profiler import PhaseProfiler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.platform.load_balancer import RoutingPolicy
from repro.platform.routing import resolve_routing
from repro.sanitizer.api import NULL_SANITIZER, Sanitizer
from repro.sim.rng import RngStreams
from repro.telemetry.registry import NULL_REGISTRY, MetricRegistry
from repro.telemetry.sampling import SamplingController, SamplingSpec
from repro.telemetry.slo import SloTracker
from repro.workloads.generator import ServiceLoad
from repro.workloads.graph import ApplicationSpec
from repro.workloads.patterns import (
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    HighBurstLoad,
    LoadPattern,
    LowBurstLoad,
    TraceLoad,
)
from repro.workloads.profiles import MicroserviceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.placement import PlacementStrategy
    from repro.experiments.runner import Simulation
    from repro.parallel.result import SweepResult

#: Schema tag embedded in every spec document; bump when the shape changes.
SWEEP_SCHEMA = "repro.sweep/1"

#: The two documented shard-seed derivations (see the module docstring).
SEED_MODES = ("per_shard", "shared")


# ----------------------------------------------------------------------
# Load-pattern codec
# ----------------------------------------------------------------------
#: Pattern class -> (type tag, constructor-field names).  ``ConstantLoad``
#: and ``CompositeLoad`` are handled explicitly (private field / recursion).
_PATTERN_FIELDS: dict[type, tuple[str, tuple[str, ...]]] = {
    LowBurstLoad: ("low_burst", ("base", "amplitude", "period", "phase")),
    HighBurstLoad: ("high_burst", ("base", "peak", "period", "duty", "phase", "ramp")),
    DiurnalLoad: ("diurnal", ("trough", "peak", "day_length", "peak_at", "phase")),
    FlashCrowdLoad: ("flash_crowd", ("base", "peak", "onset", "rise_tau", "decay_tau")),
    TraceLoad: ("trace", ("times", "rates", "loop")),
}

_PATTERN_TAGS: dict[str, type] = {tag: cls for cls, (tag, _) in _PATTERN_FIELDS.items()}


def pattern_to_dict(pattern: LoadPattern) -> dict:
    """Encode any built-in :class:`LoadPattern` as a type-tagged dict."""
    if isinstance(pattern, ConstantLoad):
        return {"type": "constant", "rate": pattern.rate(0.0)}
    if isinstance(pattern, CompositeLoad):
        return {"type": "composite", "parts": [pattern_to_dict(p) for p in pattern.parts]}
    entry = _PATTERN_FIELDS.get(type(pattern))
    if entry is None:
        raise ExperimentError(
            f"pattern {type(pattern).__name__} has no repro.sweep/1 codec; "
            "only the built-in patterns can appear in a RunSpec"
        )
    tag, fields = entry
    return {"type": tag, **{name: getattr(pattern, name) for name in fields}}


def pattern_from_dict(data: Mapping[str, Any]) -> LoadPattern:
    """Decode a type-tagged pattern dict back into a :class:`LoadPattern`."""
    tag = data.get("type")
    if tag == "constant":
        return ConstantLoad(rate=data["rate"])
    if tag == "composite":
        return CompositeLoad([pattern_from_dict(part) for part in data["parts"]])
    cls = _PATTERN_TAGS.get(str(tag))
    if cls is None:
        raise ExperimentError(f"unknown pattern type tag {tag!r} in spec document")
    kwargs = {key: value for key, value in data.items() if key != "type"}
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Fleet / load / config codecs
# ----------------------------------------------------------------------
def _load_to_dict(load: ServiceLoad) -> dict:
    return {
        "service": load.service,
        "profile": asdict(load.profile),
        "pattern": pattern_to_dict(load.pattern),
    }


def _load_from_dict(data: Mapping[str, Any]) -> ServiceLoad:
    return ServiceLoad(
        service=data["service"],
        profile=MicroserviceProfile(**data["profile"]),
        pattern=pattern_from_dict(data["pattern"]),
    )


def _config_to_dict(config: SimulationConfig) -> dict:
    return asdict(config)


def _config_from_dict(data: Mapping[str, Any]) -> SimulationConfig:
    payload = dict(data)
    cluster = ClusterConfig(**payload.pop("cluster"))
    overheads = OverheadModel(**payload.pop("overheads"))
    return SimulationConfig(cluster=cluster, overheads=overheads, **payload)


def derive_shard_seed(base_seed: int, shard_name: str) -> int:
    """The documented ``seed_mode="per_shard"`` derivation.

    Draws one 63-bit integer from the named stream ``sweep/{shard_name}``
    of ``RngStreams(base_seed)`` — the same discipline every other entropy
    consumer in the simulator follows, so shard seeds are reproducible and
    statistically independent of the simulation's own streams.
    """
    return int(RngStreams(base_seed).stream(f"sweep/{shard_name}").integers(0, 2**63 - 1))


def _canonical(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully described experiment run: the unit a sweep shards into.

    Everything that determines the run's *result* lives here — config,
    fleet, loads, policy name, seed, duration, routing — which is why the
    canonical JSON of a ``RunSpec`` can serve as a cache key.  Observation
    plumbing (tracers, profilers, telemetry registries) deliberately does
    not: it never changes a result, so it is passed at :meth:`run` time.
    """

    label: str
    policy: str
    seed: int
    duration: float
    config: SimulationConfig = field(default_factory=SimulationConfig)
    fleet: tuple[MicroserviceSpec, ...] = ()
    loads: tuple[ServiceLoad, ...] = ()
    routing: RoutingPolicy = RoutingPolicy.WEIGHTED_CPU
    timeline_every: float = 5.0
    #: Application graph for multi-tier runs.  Mutually exclusive with
    #: ``fleet`` (the fleet is derived from the graph's tiers); omitted
    #: from the codec when ``None`` so pre-graph spec documents keep
    #: their canonical bytes.
    app: ApplicationSpec | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ExperimentError("RunSpec.label must be non-empty")
        if not isinstance(self.policy, str) or not self.policy:
            raise ExperimentError(
                "RunSpec.policy must be a registered algorithm name; "
                "register custom policies via repro.core.registry.register_policy"
            )
        if self.duration <= 0:
            raise ExperimentError("RunSpec.duration must be positive")
        object.__setattr__(self, "fleet", tuple(self.fleet))
        object.__setattr__(self, "loads", tuple(self.loads))
        # Routing may arrive as a registered name (the CLI spelling);
        # normalise to the enum so the codec always writes `.value`.
        object.__setattr__(self, "routing", resolve_routing(self.routing))
        if self.app is not None:
            if self.fleet:
                raise ExperimentError(
                    "RunSpec.app and RunSpec.fleet are mutually exclusive; "
                    "the fleet is derived from the graph's tiers"
                )
            ingress = set(self.app.ingress)
            stray = {load.service for load in self.loads} - ingress
            if stray:
                raise ExperimentError(
                    f"app loads must target ingress tiers {sorted(ingress)}; "
                    f"got {sorted(stray)}"
                )

    @property
    def key(self) -> str:
        """Stable human-readable shard identity: ``label/policy/s<seed>``."""
        return f"{self.label}/{self.policy}/s{self.seed}"

    def effective_config(self) -> SimulationConfig:
        """The simulation config with this spec's seed made authoritative."""
        if self.config.seed == self.seed:
            return self.config
        return self.config.with_overrides(seed=self.seed)

    # -- execution -----------------------------------------------------
    def build(
        self,
        *,
        tracer: Tracer = NULL_TRACER,
        profiler: PhaseProfiler | None = None,
        telemetry: MetricRegistry = NULL_REGISTRY,
        slo: SloTracker | None = None,
        sanitizer: Sanitizer = NULL_SANITIZER,
        placement: "PlacementStrategy | None" = None,
        backend: str = "object",
        sampling: "SamplingController | SamplingSpec | str | None" = None,
    ) -> "Simulation":
        """Assemble the :class:`~repro.experiments.runner.Simulation`.

        The keyword arguments are the run-time observation knobs; none of
        them participates in the spec's identity (see the class docstring).
        ``backend`` rides along with them: engine backends are bit-identical
        by contract (see :mod:`repro.engine_core`), so the choice never
        changes a result and stays out of the canonical JSON.  ``sampling``
        rides the same way: telemetry sampling policies are observation-only
        (they change what the monitor *records*, never what the simulation
        *does*), so the choice stays out of the canonical JSON too.
        """
        from repro.experiments.runner import Simulation

        return Simulation.build(
            config=self.effective_config(),
            specs=list(self.fleet),
            loads=list(self.loads),
            policy=self.policy,
            workload_label=self.label,
            routing=self.routing,
            app=self.app,
            placement=placement,
            timeline_every=self.timeline_every,
            tracer=tracer,
            profiler=profiler,
            telemetry=telemetry,
            slo=slo,
            sanitizer=sanitizer,
            backend=backend,
            sampling=sampling,
        )

    def run(
        self,
        *,
        tracer: Tracer = NULL_TRACER,
        profiler: PhaseProfiler | None = None,
        telemetry: MetricRegistry = NULL_REGISTRY,
        slo: SloTracker | None = None,
        sanitizer: Sanitizer = NULL_SANITIZER,
        placement: "PlacementStrategy | None" = None,
        backend: str = "object",
        sampling: "SamplingController | SamplingSpec | str | None" = None,
    ) -> RunSummary:
        """Build and run this spec for its full duration."""
        simulation = self.build(
            tracer=tracer,
            profiler=profiler,
            telemetry=telemetry,
            slo=slo,
            sanitizer=sanitizer,
            placement=placement,
            backend=backend,
            sampling=sampling,
        )
        return simulation.run(self.duration)

    # -- codec ---------------------------------------------------------
    def to_dict(self) -> dict:
        """This spec as a ``repro.sweep/1`` document (plain JSON types)."""
        payload = {
            "schema": SWEEP_SCHEMA,
            "kind": "run_spec",
            "label": self.label,
            "policy": self.policy,
            "seed": self.seed,
            "duration": self.duration,
            "routing": self.routing.value,
            "timeline_every": self.timeline_every,
            "config": _config_to_dict(self.config),
            "fleet": [asdict(spec) for spec in self.fleet],
            "loads": [_load_to_dict(load) for load in self.loads],
        }
        if self.app is not None:
            # Appended conditionally so pre-graph documents (and fresh
            # single-service specs) keep their canonical bytes.
            payload["app"] = self.app.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Decode a ``repro.sweep/1`` run document."""
        schema = data.get("schema")
        if schema != SWEEP_SCHEMA:
            raise ExperimentError(f"unsupported spec schema {schema!r} (want {SWEEP_SCHEMA!r})")
        if data.get("kind") != "run_spec":
            raise ExperimentError(f"expected a run_spec document, got {data.get('kind')!r}")
        return cls(
            label=data["label"],
            policy=data["policy"],
            seed=data["seed"],
            duration=data["duration"],
            config=_config_from_dict(data["config"]),
            fleet=tuple(MicroserviceSpec(**spec) for spec in data["fleet"]),
            loads=tuple(_load_from_dict(load) for load in data["loads"]),
            routing=RoutingPolicy(data.get("routing", RoutingPolicy.WEIGHTED_CPU.value)),
            timeline_every=data.get("timeline_every", 5.0),
            app=(
                ApplicationSpec.from_dict(data["app"]) if data.get("app") is not None else None
            ),
        )

    def canonical_json(self) -> str:
        """Byte-stable encoding (sorted keys, no whitespace): the cache key
        input and the equality witness used by tests."""
        return _canonical(self.to_dict())


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """An ordered list of :class:`RunSpec` shards — one whole sweep.

    Shard order is contractual: serial execution, parallel merge, result
    JSON, and telemetry concatenation all follow it, which is what makes
    ``parallel=N`` byte-identical to ``parallel=1``.
    """

    shards: tuple[RunSpec, ...]
    #: How shard seeds were derived from the grid's base seed(s); purely
    #: descriptive once the shards exist, but recorded so a spec document
    #: is self-explaining.  One of :data:`SEED_MODES`.
    seed_mode: str = "per_shard"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        if not self.shards:
            raise ExperimentError("SweepSpec needs at least one shard")
        if self.seed_mode not in SEED_MODES:
            raise ExperimentError(f"seed_mode must be one of {SEED_MODES}, got {self.seed_mode!r}")
        keys = [shard.key for shard in self.shards]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ExperimentError(f"duplicate shard keys in sweep: {dupes}")

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def keys(self) -> tuple[str, ...]:
        """Every shard's :attr:`RunSpec.key`, in execution order."""
        return tuple(shard.key for shard in self.shards)

    @classmethod
    def from_grid(
        cls,
        workloads: tuple[str, ...],
        bursts: tuple[str, ...] = ("low", "high"),
        algorithms: tuple[str, ...] = ("kubernetes", "hybrid", "hybridmem"),
        seeds: tuple[int, ...] = (0,),
        *,
        seed_mode: str = "per_shard",
        duration: float | None = None,
    ) -> "SweepSpec":
        """The cartesian grid the paper's evaluation is made of.

        Builds each ``(workload, burst)`` fleet **once** per base seed via
        the canonical factories in :mod:`repro.experiments.configs` — so
        every algorithm on that cell sees the identical fleet and load
        curves — then fans out per algorithm.  Shard order is the grid
        order: workload, then burst, then base seed, then algorithm.

        ``duration`` overrides every shard's duration (handy for smoke
        sweeps); seeds follow ``seed_mode`` as documented in the module
        docstring.
        """
        from repro.workloads.registry import registered_workloads, resolve_workload

        unknown = set(workloads) - set(registered_workloads())
        if unknown:
            raise ExperimentError(
                f"unknown workloads: {sorted(unknown)}; known: {sorted(registered_workloads())}"
            )
        shards: list[RunSpec] = []
        for workload in workloads:
            factory, takes_burst = resolve_workload(workload)
            for burst in bursts if takes_burst else (None,):
                for base_seed in seeds:
                    experiment = (
                        factory(burst, seed=base_seed) if takes_burst else factory(seed=base_seed)
                    )
                    for algorithm in algorithms:
                        shards.append(
                            experiment.to_run_spec(
                                algorithm,
                                seed=_shard_seed(
                                    base_seed, f"{experiment.label}/{algorithm}", seed_mode
                                ),
                                duration=duration,
                            )
                        )
        return cls(shards=tuple(shards), seed_mode=seed_mode)

    # -- execution -----------------------------------------------------
    def run(
        self,
        parallel: int = 1,
        *,
        cache_dir: str | Path | None = None,
        telemetry: bool = False,
        progress: Callable[[RunSpec, str], None] | None = None,
        code_version: str | None = None,
    ) -> "SweepResult":
        """Execute every shard and merge the results in spec order.

        ``parallel`` is the worker-process count (1 = in-process serial,
        guaranteed byte-identical merge either way); ``cache_dir`` enables
        the content-addressed shard cache; ``telemetry=True`` collects a
        per-shard metric snapshot merged into the sweep-level snapshot.
        See :class:`repro.parallel.SweepExecutor` for the mechanics.
        """
        from repro.parallel.cache import ShardCache
        from repro.parallel.executor import SweepExecutor

        cache = None
        if cache_dir is not None:
            cache = (
                ShardCache(cache_dir)
                if code_version is None
                else ShardCache(cache_dir, code_version=code_version)
            )
        executor = SweepExecutor(
            jobs=parallel, cache=cache, collect_telemetry=telemetry, progress=progress
        )
        return executor.run(self)

    # -- codec ---------------------------------------------------------
    def to_dict(self) -> dict:
        """This sweep as a ``repro.sweep/1`` document."""
        return {
            "schema": SWEEP_SCHEMA,
            "kind": "sweep_spec",
            "seed_mode": self.seed_mode,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Decode a ``repro.sweep/1`` sweep document."""
        schema = data.get("schema")
        if schema != SWEEP_SCHEMA:
            raise ExperimentError(f"unsupported spec schema {schema!r} (want {SWEEP_SCHEMA!r})")
        if data.get("kind") != "sweep_spec":
            raise ExperimentError(f"expected a sweep_spec document, got {data.get('kind')!r}")
        return cls(
            shards=tuple(RunSpec.from_dict(shard) for shard in data["shards"]),
            seed_mode=data.get("seed_mode", "per_shard"),
        )

    def canonical_json(self) -> str:
        """Byte-stable encoding of the whole sweep document."""
        return _canonical(self.to_dict())


def _shard_seed(base_seed: int, shard_name: str, seed_mode: str) -> int:
    if seed_mode not in SEED_MODES:
        raise ExperimentError(f"seed_mode must be one of {SEED_MODES}, got {seed_mode!r}")
    if seed_mode == "shared":
        return base_seed
    return derive_shard_seed(base_seed, shard_name)
