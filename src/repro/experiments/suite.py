"""The whole evaluation in one call.

:func:`reproduce_evaluation` runs every Section VI experiment (Figures
6-8 and 10) under the algorithms the paper compares and returns the
results keyed by figure; :func:`render_reproduction` prints them with the
paper's qualitative claims alongside, so ``hyscale-repro reproduce`` gives
a one-command answer to "does this repo reproduce the paper?".

The Section III microbenchmarks (Figures 2-3) are included as curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.speedup import response_speedup
from repro.experiments.configs import bitbrains, cpu_bound, mixed, network_bound
from repro.experiments.report import comparison_table, scaling_curve_table
from repro.experiments.spec import RunSpec, SweepSpec
from repro.experiments.section3 import (
    ScalingPoint,
    cpu_scaling_curve,
    network_scaling_curve,
)
from repro.metrics.summary import RunSummary

#: Figure id -> (spec factory, algorithms the paper compares on it).
FIGURES: dict[str, tuple[Callable, tuple[str, ...]]] = {
    "fig6a": (lambda seed: cpu_bound("low", seed=seed), ("kubernetes", "hybrid", "hybridmem")),
    "fig6b": (lambda seed: cpu_bound("high", seed=seed), ("kubernetes", "hybrid", "hybridmem")),
    "fig7a": (lambda seed: mixed("low", seed=seed), ("kubernetes", "hybrid", "hybridmem")),
    "fig7b": (lambda seed: mixed("high", seed=seed), ("kubernetes", "hybrid", "hybridmem")),
    "fig8a": (
        lambda seed: network_bound("low", seed=seed),
        ("kubernetes", "hybrid", "hybridmem", "network"),
    ),
    "fig8b": (
        lambda seed: network_bound("high", seed=seed),
        ("kubernetes", "hybrid", "hybridmem", "network"),
    ),
    "fig10": (lambda seed: bitbrains(seed=seed), ("kubernetes", "hybrid", "hybridmem")),
}

#: Figure id -> the claim printed next to the results.
CLAIMS: dict[str, str] = {
    "fig6a": "paper: hybrids fastest (1.49x over K8s), K8s slowest, >=99.8% availability",
    "fig6b": "paper: hybrids fastest (1.43x over K8s), up to 10x fewer failures",
    "fig7a": "paper: K8s beats HYSCALE_CPU (accidental memory); hybridmem best",
    "fig7b": "paper: memory-blind algorithms drop up to 23.67% of requests",
    "fig8a": "paper: everyone competitive at low burst (syscall CPU proxy)",
    "fig8b": "paper: dedicated network scaling clearly best (up to 59.22% drop)",
    "fig10": "paper: hybridmem best; K8s outperforms HYSCALE_CPU",
}


@dataclass(frozen=True)
class ReproductionResult:
    """Everything :func:`reproduce_evaluation` produced."""

    figures: dict[str, dict[str, RunSummary]]
    fig2: list[ScalingPoint]
    fig3: list[ScalingPoint]

    def speedup(self, figure: str, candidate: str, baseline: str = "kubernetes") -> float:
        """Convenience: response speedup within one figure's runs."""
        runs = self.figures[figure]
        return response_speedup(runs[candidate], runs[baseline])


def reproduce_evaluation(
    seed: int = 0,
    figures: tuple[str, ...] | None = None,
    progress: Callable[[str], None] | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> ReproductionResult:
    """Run the paper's evaluation matrix (or a subset of figure ids).

    The matrix is assembled into one :class:`SweepSpec` (seed mode
    ``"shared"`` — the paper replays the identical arrival sequence under
    every algorithm) and executed by the parallel sweep executor:
    ``jobs`` worker processes, optionally resumable via the
    content-addressed shard cache at ``cache_dir``.  Results are
    byte-identical for any ``jobs``.
    """
    selected = figures or tuple(FIGURES)
    unknown = set(selected) - set(FIGURES)
    if unknown:
        raise KeyError(f"unknown figure ids: {sorted(unknown)}; known: {sorted(FIGURES)}")

    shards: list[RunSpec] = []
    figure_of: dict[str, str] = {}
    for figure in selected:
        factory, algorithms = FIGURES[figure]
        spec = factory(seed)
        for algorithm in algorithms:
            shard = spec.to_run_spec(algorithm)
            shards.append(shard)
            figure_of[shard.key] = figure

    def _report(shard: RunSpec, status: str) -> None:
        if progress is None or status == "done":
            return
        suffix = " (cached)" if status == "cached" else ""
        progress(f"{figure_of[shard.key]}: {shard.label} under {shard.policy}{suffix}")

    sweep = SweepSpec(shards=tuple(shards), seed_mode="shared")
    outcome = sweep.run(parallel=jobs, cache_dir=cache_dir, progress=_report)

    results: dict[str, dict[str, RunSummary]] = {figure: {} for figure in selected}
    for shard, summary in outcome.shards():
        results[figure_of[shard.key]][shard.policy] = summary

    if progress:
        progress("fig2: CPU horizontal scaling curve")
    fig2 = cpu_scaling_curve()
    if progress:
        progress("fig3: network horizontal scaling curve")
    fig3 = network_scaling_curve()
    return ReproductionResult(figures=results, fig2=fig2, fig3=fig3)


def render_reproduction(result: ReproductionResult) -> str:
    """The full evaluation as text, claims alongside measurements."""
    blocks = [
        scaling_curve_table(result.fig2, title="Figure 2: CPU horizontal scaling"),
        "",
        scaling_curve_table(result.fig3, title="Figure 3: network horizontal scaling"),
    ]
    for figure in sorted(result.figures):
        runs = result.figures[figure]
        blocks.append("")
        blocks.append(comparison_table(runs, title=f"{figure} — {CLAIMS.get(figure, '')}"))
        if "kubernetes" in runs:
            for name, summary in sorted(runs.items()):
                if name != "kubernetes":
                    speedup = response_speedup(summary, runs["kubernetes"])
                    blocks.append(f"  {name} vs kubernetes: {speedup:.2f}x")
    return "\n".join(blocks)
