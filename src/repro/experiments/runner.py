"""Wires one complete experiment: cluster + platform + workload + policy.

Phase order within each simulation step (see DESIGN.md §4):

1. ``generator``  — draw this step's arrivals, submit to the LB,
2. ``lb``         — retry the routing backlog, expire un-routable requests,
3. ``cluster``    — boot timers, CPU fair-share, NIC, settlement, OOM,
4. ``nm/*``       — sample ``docker stats`` into the NMs' windows,
5. ``monitor``    — reap corpses; on the query period: view -> policy -> act,
6. ``metrics``    — drain finished requests and sample the timeline,
7. ``telemetry``  — (only with a recording registry) sample the standard
   instrument catalogue and capture series rings.

Registration order in the engine *is* this order, so the data flow is
auditable and deterministic.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.placement import PlacementStrategy, SpreadPlacement
from repro.config import SimulationConfig
from repro.core.policy import AutoscalingPolicy
from repro.core.registry import resolve_policy
from repro.dockersim.api import DockerClient
from repro.engine_core.backend import DEFAULT_BACKEND, resolve_backend
from repro.errors import ExperimentError
from repro.instrument import when_enabled
from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.summary import RunSummary
from repro.obs.profiler import PhaseProfiler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.platform.faults import FaultInjector, NodeManagerFleet
from repro.platform.graph import GraphRouter
from repro.platform.lb_tier import LoadBalancerTier
from repro.platform.load_balancer import RoutingPolicy
from repro.platform.monitor import Monitor
from repro.platform.node_manager import NodeManager
from repro.platform.registry import ServiceRegistry
from repro.platform.routing import resolve_routing
from repro.sanitizer.api import NULL_SANITIZER, Sanitizer
from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.telemetry.hub import RunTelemetry
from repro.telemetry.registry import NULL_REGISTRY, MetricRegistry
from repro.telemetry.sampling import SamplingController, SamplingSpec, resolve_sampling
from repro.telemetry.slo import SloTracker
from repro.workloads.generator import ClientLoadGenerator, ServiceLoad
from repro.workloads.graph import ApplicationSpec
from repro.workloads.requests import Request


class _MetricsActor:
    """Final phase: collect finished requests and sample the timeline."""

    def __init__(
        self,
        cluster: Cluster,
        collector: MetricsCollector,
        sample_every: float,
        profiler: PhaseProfiler | None = None,
        telemetry: RunTelemetry | None = None,
    ):
        self._cluster = cluster
        self._collector = collector
        self._sample_every = sample_every
        self._next_sample = 0.0
        self._profiler = profiler
        self._telemetry = telemetry

    def on_step(self, clock: SimClock) -> None:
        finished = self._cluster.drain_finished()
        self._collector.record_requests(finished)
        if self._telemetry is not None:
            for request in finished:
                self._telemetry.observe_request(request)
        if self._profiler is not None:
            self._profiler.increment("metrics.steps")
        if clock.now + 1e-9 >= self._next_sample:
            self._next_sample += self._sample_every
            self._sample(clock.now)

    def _sample(self, now: float) -> None:
        """One timeline point from a *single* pass over every container.

        The previous implementation rebuilt each node's sorted
        ``active_containers()`` list four times per sample (usage,
        allocation, inflight, active-node count); one unsorted pass
        accumulates all eight aggregates at once.  Per-node dict order is
        insertion order, which the deterministic boot sequence fixes, so
        the sums are reproducible run-to-run.
        """
        if self._profiler is not None:
            self._profiler.increment("metrics.samples")
        totals = self._cluster.metrics_totals()
        if totals is not None:
            # Array backend: the same aggregates from batched store kernels
            # (order-exact reductions — bit-identical to the loop below).
            cpu_usage, mem_usage, net_usage, cpu_allocated, mem_allocated, inflight, active_nodes = totals
        else:
            cpu_usage = mem_usage = net_usage = 0.0
            cpu_allocated = mem_allocated = 0.0
            inflight = 0
            active_nodes = 0
            for node in self._cluster.nodes.values():
                node_active = False
                for container in node.containers.values():
                    if not container.is_active:
                        continue
                    node_active = True
                    cpu_usage += container.cpu_usage
                    mem_usage += container.mem_usage
                    net_usage += container.net_usage
                    cpu_allocated += container.cpu_request
                    mem_allocated += container.mem_limit
                    inflight += len(container.inflight)
                if node_active:
                    active_nodes += 1
        replicas = sum(s.replica_count for s in self._cluster.services.values())
        window_avg, window_completed, window_failed = self._collector.drain_window_stats()
        self._collector.sample_timeline(
            TimelinePoint(
                time=now,
                total_replicas=replicas,
                cpu_usage=cpu_usage,
                cpu_allocated=cpu_allocated,
                mem_usage=mem_usage,
                mem_allocated=mem_allocated,
                net_usage=net_usage,
                inflight=inflight,
                active_nodes=active_nodes,
                total_nodes=len(self._cluster.nodes),
                window_avg_response=window_avg,
                window_completed=window_completed,
                window_failed=window_failed,
            )
        )


@dataclass
class Simulation:
    """One fully wired experiment, ready to run."""

    engine: Engine
    cluster: Cluster
    client: DockerClient
    #: The distributed proxy tier (``ClusterConfig.load_balancers`` proxies).
    load_balancer: LoadBalancerTier
    generator: ClientLoadGenerator
    monitor: Monitor
    collector: MetricsCollector
    policy: AutoscalingPolicy
    workload_label: str
    #: Schedule machine crashes/additions here before (or while) running —
    #: the paper's "dynamic addition and removal of machines" future work.
    faults: FaultInjector
    #: Decision-trace sink every policy decision reports into
    #: (:data:`~repro.obs.NULL_TRACER` unless a recording tracer was passed
    #: to :meth:`build`).
    tracer: Tracer = NULL_TRACER
    #: Per-phase wall-time profiler, or ``None`` when profiling is off.
    profiler: PhaseProfiler | None = None
    #: Invariant sanitizer (:data:`~repro.sanitizer.NULL_SANITIZER` unless
    #: a recording :class:`~repro.sanitizer.SimSanitizer` was passed to
    #: :meth:`build`).
    sanitizer: Sanitizer = NULL_SANITIZER
    #: The run's instrument catalogue + sampling actor.  Always present;
    #: backed by :data:`~repro.telemetry.NULL_REGISTRY` (all no-ops) unless
    #: a recording registry was passed to :meth:`build`.
    telemetry: RunTelemetry | None = None
    #: The application graph this run models, or ``None`` for a plain
    #: single-service fleet.
    app: ApplicationSpec | None = None
    #: The cross-tier router actor (app runs only).
    router: GraphRouter | None = None

    @classmethod
    def build(
        cls,
        *,
        config: SimulationConfig,
        specs: list[MicroserviceSpec] | None = None,
        loads: list[ServiceLoad],
        policy: AutoscalingPolicy | str,
        workload_label: str = "custom",
        routing: "RoutingPolicy | str" = RoutingPolicy.WEIGHTED_CPU,
        app: ApplicationSpec | None = None,
        placement: PlacementStrategy | None = None,
        timeline_every: float = 5.0,
        tracer: Tracer = NULL_TRACER,
        profiler: PhaseProfiler | None = None,
        telemetry: MetricRegistry = NULL_REGISTRY,
        slo: SloTracker | None = None,
        sanitizer: Sanitizer = NULL_SANITIZER,
        backend: str = DEFAULT_BACKEND,
        sampling: SamplingController | SamplingSpec | str | None = None,
    ) -> "Simulation":
        """Assemble cluster, platform, and workload for one experiment.

        ``policy`` may be a policy object or a registered algorithm name
        (see :func:`repro.core.resolve_policy`); names are built with this
        config's rescale intervals.

        ``telemetry`` selects the metric registry: the default
        :data:`~repro.telemetry.NULL_REGISTRY` records nothing at zero
        cost; pass a :class:`~repro.telemetry.MetricRegistry` to stream the
        standard instrument catalogue (sampled every ``timeline_every``
        simulated seconds, as an extra final engine phase named
        ``telemetry``).  ``slo`` optionally adds error-budget burn-rate
        tracking on top; it requires a recording registry.

        ``sanitizer`` selects the invariant sanitizer: the default
        :data:`~repro.sanitizer.NULL_SANITIZER` checks nothing at zero
        cost; pass a :class:`~repro.sanitizer.SimSanitizer` to bracket
        every engine step with conservation/aliasing/ordering audits
        (observation only — a sanitized run is bit-identical to a bare
        one).  Mutually exclusive with ``profiler``.

        ``backend`` selects the engine core (see
        :func:`repro.engine_core.resolve_backend`): ``"object"`` is the
        scalar reference engine; ``"array"`` keeps container state in a
        struct-of-arrays :class:`~repro.engine_core.store.ClusterState`
        behind the identical object API, bit-identical at paper scale.

        ``sampling`` selects the telemetry sampling policy (see
        :func:`repro.telemetry.resolve_sampling`): a registered name
        (``"full"``, ``"adaptive"``, ``"threshold-aware"``), a
        :class:`~repro.telemetry.SamplingSpec`, or a controller instance.
        The default (``None``) is full-cadence sampling, byte-identical
        to builds that never pass the keyword; like tracers and backends
        it is an observation knob and never part of a RunSpec's identity.
        Requires a recording registry when set.

        ``app`` switches the run to an application graph: the fleet is
        derived from the graph's tiers (``specs`` must not be passed),
        ``loads`` must target ingress tiers only, and the engine gains an
        ``app-router`` phase (right after ``cluster``) that dispatches and
        joins cross-tier calls.  ``routing`` accepts a
        :class:`RoutingPolicy` or a registered routing name; it is both
        the front LB tier's policy and the default for graph edges that
        do not pin their own.
        """
        config.validate()
        policy = resolve_policy(policy, config)
        routing = resolve_routing(routing)
        if app is not None:
            if specs:
                raise ExperimentError("pass either app= or specs=, not both")
            specs = list(app.service_specs())
        if not specs:
            raise ExperimentError("at least one microservice spec is required")
        spec_names = {s.name for s in specs}
        load_names = {l.service for l in loads}
        if not load_names <= spec_names:
            raise ExperimentError(f"loads reference unknown services: {load_names - spec_names}")
        if app is not None:
            ingress = set(app.ingress)
            if not load_names <= ingress:
                raise ExperimentError(
                    f"app loads must target ingress tiers {sorted(ingress)}; "
                    f"got {sorted(load_names - ingress)}"
                )

        if slo is not None and not telemetry.enabled:
            raise ExperimentError("SLO tracking needs a recording telemetry registry")
        if sampling is not None and not telemetry.enabled:
            raise ExperimentError("sampling policies need a recording telemetry registry")
        sampling_controller = resolve_sampling(sampling)

        engine = Engine(dt=config.dt, profiler=profiler, sanitizer=sanitizer)
        rng = RngStreams(config.seed)
        cluster = resolve_backend(backend).from_config(config.cluster, config.overheads)
        if engine.sanitizer is not None:
            sanitizer.bind(cluster=cluster)
        client = DockerClient(cluster)
        collector = MetricsCollector()
        hub = RunTelemetry(
            telemetry,
            slo=slo,
            sample_every=timeline_every,
            profiler=profiler,
            sampling=sampling_controller,
        )
        if telemetry.enabled:
            # LB rejections bypass the cluster's drain path, so the sink is
            # the only place they can be observed; wrap it.
            def failure_sink(request: Request) -> None:
                collector.record_request(request)
                hub.observe_rejection(request)

        else:
            failure_sink = collector.record_request
        recording_hub = when_enabled(hub)
        registry = ServiceRegistry(cluster)
        lb = LoadBalancerTier(
            registry,
            config.overheads,
            failure_sink=failure_sink,
            policy=routing,
            n_balancers=config.cluster.load_balancers,
        )
        router: GraphRouter | None = None
        if app is not None:
            collector.enable_graph()
            hub.enable_graph()
            # One id space for ingress arrivals and internal graph calls,
            # shared by the generator and the router (ids shard the LB
            # tier, so they must be a pure function of the run).
            request_seq = itertools.count(1)
            router = GraphRouter(
                app,
                registry,
                config.overheads,
                rng,
                failure_sink,
                lb.submit,
                request_seq,
                routing=routing,
                telemetry=recording_hub,
            )
            generator = ClientLoadGenerator(
                loads, rng, sink=router.ingress, request_seq=request_seq
            )
        else:
            generator = ClientLoadGenerator(loads, rng, sink=lb.submit)

        node_managers = {
            name: NodeManager(daemon, window_horizon=max(30.0, config.monitor_period))
            for name, daemon in client.daemons.items()
        }
        monitor = Monitor(
            cluster,
            client,
            node_managers,
            policy,
            config,
            collector,
            placement=placement or SpreadPlacement(),
            tracer=tracer,
            telemetry=recording_hub,
            sanitizer=sanitizer,
        )

        # Initial deployment: min_replicas per service, spread over the
        # cluster, already warm (the paper's experiments begin with every
        # microservice running).
        place = placement or SpreadPlacement()
        for spec in sorted(specs, key=lambda s: s.name):
            cluster.register_service(spec)
            for _ in range(spec.min_replicas):
                node = place.choose(
                    cluster.sorted_nodes(),
                    spec.initial_allocation(),
                    exclude_service=spec.name,
                ) or place.choose(cluster.sorted_nodes(), spec.initial_allocation())
                if node is None:
                    raise ExperimentError(
                        f"cluster too small for initial deployment of {spec.name}"
                    )
                client.run_replica(
                    spec.name,
                    node.name,
                    cpu_request=spec.cpu_request,
                    mem_limit=spec.mem_limit,
                    net_rate=spec.net_rate,
                    now=0.0,
                    boot_delay=0.0,
                )

        faults = FaultInjector(cluster, client, node_managers)

        engine.add_actor("faults", faults)
        engine.add_actor("generator", generator)
        engine.add_actor("lb", lb)
        engine.add_actor("cluster", cluster)
        if router is not None:
            # Dispatch/join cross-tier calls on the just-settled cluster,
            # before node managers sample and the monitor acts.
            engine.add_actor("app-router", router)
        engine.add_actor("node-managers", NodeManagerFleet(node_managers))
        engine.add_actor("monitor", monitor)
        engine.add_actor(
            "metrics",
            _MetricsActor(
                cluster,
                collector,
                timeline_every,
                profiler=profiler,
                telemetry=recording_hub,
            ),
        )
        hub.bind(cluster=cluster, lb=lb, generator=generator)
        if recording_hub is not None:
            # Last phase: sample after the step has fully settled.  Not
            # registered at all under the null registry, so un-instrumented
            # runs keep the documented seven-phase order.
            engine.add_actor("telemetry", hub)
            engine.attach_counters(
                steps=hub.sim_steps.labels(), events=hub.sim_events_fired.labels()
            )

        return cls(
            engine=engine,
            cluster=cluster,
            client=client,
            load_balancer=lb,
            generator=generator,
            monitor=monitor,
            collector=collector,
            policy=policy,
            workload_label=workload_label,
            faults=faults,
            tracer=tracer,
            profiler=profiler,
            telemetry=hub,
            sanitizer=sanitizer,
            app=app,
            router=router,
        )

    def run(self, duration: float) -> RunSummary:
        """Run for ``duration`` simulated seconds and summarize."""
        self.engine.run_for(duration)
        return self.summary()

    def summary(self) -> RunSummary:
        """Summary of everything recorded so far."""
        return RunSummary.from_collector(
            self.collector,
            algorithm=self.policy.name,
            workload=self.workload_label,
            duration=self.engine.clock.now,
            app=self.app.name if self.app is not None else None,
        )


def run_experiment(
    *,
    config: SimulationConfig,
    specs: list[MicroserviceSpec],
    loads: list[ServiceLoad],
    policy: AutoscalingPolicy | str,
    duration: float,
    workload_label: str = "custom",
    routing: RoutingPolicy = RoutingPolicy.WEIGHTED_CPU,
    placement: PlacementStrategy | None = None,
    tracer: Tracer = NULL_TRACER,
    profiler: PhaseProfiler | None = None,
    telemetry: MetricRegistry = NULL_REGISTRY,
    slo: SloTracker | None = None,
    sanitizer: Sanitizer = NULL_SANITIZER,
) -> RunSummary:
    """Deprecated one-shot: build a :class:`Simulation` and run it.

    This signature is the old spelling of what
    :class:`repro.experiments.spec.RunSpec` now describes canonically;
    it survives as a thin shim that forwards *exactly* (same defaults,
    same semantics, pinned in tests).  Prefer::

        RunSpec(label=..., policy="hybrid", seed=..., duration=...,
                config=..., fleet=..., loads=...).run()

    Registered policy names route through the spec layer; policy
    *objects* cannot be canonicalised and keep the direct build path.
    """
    warnings.warn(
        "run_experiment() is deprecated; describe the run with a "
        "repro.experiments.spec.RunSpec and call .run() (see docs/parallel.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    if isinstance(policy, str):
        from repro.experiments.spec import RunSpec

        return RunSpec(
            label=workload_label,
            policy=policy,
            seed=config.seed,
            duration=duration,
            config=config,
            fleet=tuple(specs),
            loads=tuple(loads),
            routing=routing,
        ).run(
            placement=placement,
            tracer=tracer,
            profiler=profiler,
            telemetry=telemetry,
            slo=slo,
            sanitizer=sanitizer,
        )
    simulation = Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy=policy,
        workload_label=workload_label,
        routing=routing,
        placement=placement,
        tracer=tracer,
        profiler=profiler,
        telemetry=telemetry,
        slo=slo,
        sanitizer=sanitizer,
    )
    return simulation.run(duration)
