"""Wires one complete experiment: cluster + platform + workload + policy.

Phase order within each simulation step (see DESIGN.md §4):

1. ``generator``  — draw this step's arrivals, submit to the LB,
2. ``lb``         — retry the routing backlog, expire un-routable requests,
3. ``cluster``    — boot timers, CPU fair-share, NIC, settlement, OOM,
4. ``nm/*``       — sample ``docker stats`` into the NMs' windows,
5. ``monitor``    — reap corpses; on the query period: view -> policy -> act,
6. ``metrics``    — drain finished requests and sample the timeline.

Registration order in the engine *is* this order, so the data flow is
auditable and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.placement import PlacementStrategy, SpreadPlacement
from repro.config import SimulationConfig
from repro.core.policy import AutoscalingPolicy
from repro.dockersim.api import DockerClient
from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.summary import RunSummary
from repro.platform.faults import FaultInjector, NodeManagerFleet
from repro.platform.lb_tier import LoadBalancerTier
from repro.platform.load_balancer import RoutingPolicy
from repro.platform.monitor import Monitor
from repro.platform.node_manager import NodeManager
from repro.platform.registry import ServiceRegistry
from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads.generator import ClientLoadGenerator, ServiceLoad


class _MetricsActor:
    """Final phase: collect finished requests and sample the timeline."""

    def __init__(self, cluster: Cluster, collector: MetricsCollector, sample_every: float):
        self._cluster = cluster
        self._collector = collector
        self._sample_every = sample_every
        self._next_sample = 0.0

    def on_step(self, clock: SimClock) -> None:
        self._collector.record_requests(self._cluster.drain_finished())
        if clock.now + 1e-9 >= self._next_sample:
            self._next_sample += self._sample_every
            self._sample(clock.now)

    def _sample(self, now: float) -> None:
        usage = self._cluster.total_usage()
        allocated = self._cluster.total_allocated()
        replicas = sum(s.replica_count for s in self._cluster.services.values())
        inflight = sum(
            len(c.inflight)
            for node in self._cluster.nodes.values()
            for c in node.active_containers()
        )
        active_nodes = sum(
            1 for node in self._cluster.nodes.values() if node.active_containers()
        )
        window_avg, window_completed, window_failed = self._collector.drain_window_stats()
        self._collector.sample_timeline(
            TimelinePoint(
                time=now,
                total_replicas=replicas,
                cpu_usage=usage.cpu,
                cpu_allocated=allocated.cpu,
                mem_usage=usage.memory,
                mem_allocated=allocated.memory,
                net_usage=usage.network,
                inflight=inflight,
                active_nodes=active_nodes,
                total_nodes=len(self._cluster.nodes),
                window_avg_response=window_avg,
                window_completed=window_completed,
                window_failed=window_failed,
            )
        )


@dataclass
class Simulation:
    """One fully wired experiment, ready to run."""

    engine: Engine
    cluster: Cluster
    client: DockerClient
    #: The distributed proxy tier (``ClusterConfig.load_balancers`` proxies).
    load_balancer: LoadBalancerTier
    generator: ClientLoadGenerator
    monitor: Monitor
    collector: MetricsCollector
    policy: AutoscalingPolicy
    workload_label: str
    #: Schedule machine crashes/additions here before (or while) running —
    #: the paper's "dynamic addition and removal of machines" future work.
    faults: FaultInjector

    @classmethod
    def build(
        cls,
        *,
        config: SimulationConfig,
        specs: list[MicroserviceSpec],
        loads: list[ServiceLoad],
        policy: AutoscalingPolicy,
        workload_label: str = "custom",
        routing: RoutingPolicy = RoutingPolicy.WEIGHTED_CPU,
        placement: PlacementStrategy | None = None,
        timeline_every: float = 5.0,
    ) -> "Simulation":
        """Assemble cluster, platform, and workload for one experiment."""
        config.validate()
        if not specs:
            raise ExperimentError("at least one microservice spec is required")
        spec_names = {s.name for s in specs}
        load_names = {l.service for l in loads}
        if not load_names <= spec_names:
            raise ExperimentError(f"loads reference unknown services: {load_names - spec_names}")

        engine = Engine(dt=config.dt)
        rng = RngStreams(config.seed)
        cluster = Cluster.from_config(config.cluster, config.overheads)
        client = DockerClient(cluster)
        collector = MetricsCollector()
        registry = ServiceRegistry(cluster)
        lb = LoadBalancerTier(
            registry,
            config.overheads,
            failure_sink=collector.record_request,
            policy=routing,
            n_balancers=config.cluster.load_balancers,
        )
        generator = ClientLoadGenerator(loads, rng, sink=lb.submit)

        node_managers = {
            name: NodeManager(daemon, window_horizon=max(30.0, config.monitor_period))
            for name, daemon in client.daemons.items()
        }
        monitor = Monitor(
            cluster,
            client,
            node_managers,
            policy,
            config,
            collector,
            placement=placement or SpreadPlacement(),
        )

        # Initial deployment: min_replicas per service, spread over the
        # cluster, already warm (the paper's experiments begin with every
        # microservice running).
        place = placement or SpreadPlacement()
        for spec in sorted(specs, key=lambda s: s.name):
            cluster.register_service(spec)
            for _ in range(spec.min_replicas):
                node = place.choose(
                    cluster.sorted_nodes(),
                    spec.initial_allocation(),
                    exclude_service=spec.name,
                ) or place.choose(cluster.sorted_nodes(), spec.initial_allocation())
                if node is None:
                    raise ExperimentError(
                        f"cluster too small for initial deployment of {spec.name}"
                    )
                client.run_replica(
                    spec.name,
                    node.name,
                    cpu_request=spec.cpu_request,
                    mem_limit=spec.mem_limit,
                    net_rate=spec.net_rate,
                    now=0.0,
                    boot_delay=0.0,
                )

        faults = FaultInjector(cluster, client, node_managers)

        engine.add_actor("faults", faults)
        engine.add_actor("generator", generator)
        engine.add_actor("lb", lb)
        engine.add_actor("cluster", cluster)
        engine.add_actor("node-managers", NodeManagerFleet(node_managers))
        engine.add_actor("monitor", monitor)
        engine.add_actor("metrics", _MetricsActor(cluster, collector, timeline_every))

        return cls(
            engine=engine,
            cluster=cluster,
            client=client,
            load_balancer=lb,
            generator=generator,
            monitor=monitor,
            collector=collector,
            policy=policy,
            workload_label=workload_label,
            faults=faults,
        )

    def run(self, duration: float) -> RunSummary:
        """Run for ``duration`` simulated seconds and summarize."""
        self.engine.run_for(duration)
        return self.summary()

    def summary(self) -> RunSummary:
        """Summary of everything recorded so far."""
        return RunSummary.from_collector(
            self.collector,
            algorithm=self.policy.name,
            workload=self.workload_label,
            duration=self.engine.clock.now,
        )


def run_experiment(
    *,
    config: SimulationConfig,
    specs: list[MicroserviceSpec],
    loads: list[ServiceLoad],
    policy: AutoscalingPolicy,
    duration: float,
    workload_label: str = "custom",
    routing: RoutingPolicy = RoutingPolicy.WEIGHTED_CPU,
    placement: PlacementStrategy | None = None,
) -> RunSummary:
    """Convenience one-shot: build a :class:`Simulation` and run it."""
    simulation = Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy=policy,
        workload_label=workload_label,
        routing=routing,
        placement=placement,
    )
    return simulation.run(duration)
