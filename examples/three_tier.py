"""Three-tier application graph: cross-tier routing and back-pressure.

Builds the canonical frontend -> api -> db application — one user request
fans out one api call, which fans out two db calls — and runs it under the
HyScale hybrid autoscaler.  The frontend is the only tier clients talk to;
the api and db tiers see *internal* traffic dispatched by the graph
router, so the MONITOR has to scale tiers it never sees arrivals for.

Two runs are compared: a healthy db tier, and one capped at two replicas.
The capped db saturates, holds its callers' requests open (back-pressure),
and the damage surfaces where users feel it — the frontend's end-to-end
p99.

Run with::

    python examples/three_tier.py
"""

from repro.config import ClusterConfig, SimulationConfig
from repro.experiments.runner import Simulation
from repro.workloads import CPU_BOUND, LowBurstLoad, ServiceLoad, three_tier_app


def run_once(db_max_replicas: int) -> tuple[float, float]:
    """One three-tier run; returns (ingress p99, ingress failure %)."""
    app = three_tier_app(db_max_replicas=db_max_replicas)
    sim = Simulation.build(
        config=SimulationConfig(cluster=ClusterConfig(worker_nodes=8), seed=7),
        loads=[
            ServiceLoad(
                service="frontend",
                profile=CPU_BOUND,
                pattern=LowBurstLoad(base=8.0, amplitude=0.3, period=120.0),
            )
        ],
        policy="hybrid",
        workload_label="three-tier-example",
        app=app,
    )
    summary = sim.run(duration=180.0)
    assert summary.app is not None
    return summary.app.p99_response_time, summary.app.percent_failed


def main() -> None:
    healthy_p99, healthy_failed = run_once(db_max_replicas=16)
    capped_p99, capped_failed = run_once(db_max_replicas=1)

    print("three-tier app: frontend -> api -> (2x) db")
    print(f"healthy db : e2e p99 {healthy_p99:.2f}s, failed {healthy_failed:.2f}%")
    print(f"capped  db : e2e p99 {capped_p99:.2f}s, failed {capped_failed:.2f}%")
    if capped_p99 > healthy_p99 or capped_failed > healthy_failed:
        print("back-pressure: the db bottleneck surfaced in the frontend's numbers")


if __name__ == "__main__":
    main()
