"""Writing your own autoscaling policy.

The platform treats algorithms as plug-ins (Section V-C: the scaling
algorithm "can be specified at initialization").  Anything implementing
:class:`repro.core.AutoscalingPolicy` — a pure function from a
:class:`~repro.core.view.ClusterView` snapshot to a list of actions — can
drive the MONITOR.

This example implements a *predictive* toy policy, one of the paper's
future-work directions: it extrapolates each service's CPU usage linearly
from the last two observations and provisions for where usage is heading
rather than where it is.  It then races the predictor against the paper's
HyScale_CPU on the same spiky workload.

Run with::

    python examples/custom_policy.py
"""

from repro import SimulationConfig, run_experiment
from repro.analysis import compare_runs
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.core import AutoscalingPolicy, HyScaleCpu, VerticalScale
from repro.core.actions import ScalingAction
from repro.core.view import ClusterView
from repro.experiments.configs import make_policy
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad


class TrendScaler(AutoscalingPolicy):
    """Vertical-only scaler that provisions for the usage *trend*.

    For each replica it remembers the previous usage sample, extrapolates
    one monitor period ahead, and sizes the allocation so the *predicted*
    usage sits at the target utilization.  Purely vertical: a deliberately
    simple illustration, not a contribution.
    """

    name = "trend"

    def __init__(self, target: float = 0.5):
        self.target = target
        self._last_usage: dict[str, float] = {}

    def decide(self, view: ClusterView) -> list[ScalingAction]:
        actions: list[ScalingAction] = []
        for service in view.services:
            for replica in service.measurable_replicas():
                previous = self._last_usage.get(replica.container_id, replica.cpu_usage)
                self._last_usage[replica.container_id] = replica.cpu_usage
                predicted = max(0.0, replica.cpu_usage + (replica.cpu_usage - previous))
                wanted = max(0.1, predicted / self.target)
                node = view.node_of(replica)
                headroom = node.available.cpu
                new_request = min(wanted, replica.cpu_request + headroom)
                if abs(new_request - replica.cpu_request) > 0.05:
                    actions.append(
                        VerticalScale(replica.container_id, cpu_request=new_request, reason="trend")
                    )
        return actions


def main() -> None:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=6), seed=5)
    specs = [
        MicroserviceSpec(name=f"svc-{i}", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=10)
        for i in range(4)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=5.0, peak=16.0, period=150.0, duty=0.3, phase=i * 37.5, ramp=6.0),
        )
        for i, spec in enumerate(specs)
    ]

    summaries = {}
    for policy in (TrendScaler(), HyScaleCpu(), make_policy("kubernetes", config)):
        print(f"running under {policy.name} ...")
        summaries[policy.name] = run_experiment(
            config=config,
            specs=specs,
            loads=loads,
            policy=policy,
            duration=300.0,
            workload_label="custom-policy",
        )

    print()
    print(compare_runs("custom-policy", summaries).to_table())


if __name__ == "__main__":
    main()
