"""Video CDN edge: why network-bound services need a network scaler.

A video clip service pushes multi-megabit responses.  CPU-driven
autoscalers barely see the pressure — egress saturates the machine's tx
queues long before CPU utilization crosses any threshold (the paper's
Section III-C / Figure 8 finding).  We replay a viral-clip burst under
Kubernetes' CPU-driven HPA and the paper's dedicated network scaling
algorithm and print both the comparison and the per-replica bandwidth story.

Run with::

    python examples/video_cdn_burst.py
"""

from repro import SimulationConfig, run_experiment
from repro.analysis import compare_runs
from repro.analysis.speedup import response_drop_percent
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.experiments.configs import make_policy
from repro.workloads import HighBurstLoad, NETWORK_BOUND, ServiceLoad

SERVICES = ("clips-eu", "clips-us", "clips-apac")


def main() -> None:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=6), seed=11)

    specs = [
        MicroserviceSpec(
            name=name,
            cpu_request=0.5,
            mem_limit=512.0,
            net_rate=100.0,  # guaranteed Mbit/s per replica
            min_replicas=1,
            max_replicas=10,
            target_utilization=0.5,
            profile="network_bound",
        )
        for name in SERVICES
    ]
    loads = [
        ServiceLoad(
            service=name,
            profile=NETWORK_BOUND,
            # A clip goes viral: 4 req/s baseline spikes to 14 req/s
            # (~170 Mbit/s of egress per service).
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=150.0, duty=0.3, phase=i * 50.0, ramp=6.0),
        )
        for i, name in enumerate(SERVICES)
    ]

    summaries = {}
    for algorithm in ("kubernetes", "network"):
        print(f"running CDN burst under {algorithm} ...")
        summaries[algorithm] = run_experiment(
            config=config,
            specs=specs,
            loads=loads,
            policy=make_policy(algorithm, config),
            duration=300.0,
            workload_label="video-cdn",
        )

    report = compare_runs("video-cdn", summaries)
    print()
    print(report.to_table())
    drop = response_drop_percent(summaries["network"], summaries["kubernetes"])
    print()
    print(f"network scaler response-time change vs kubernetes: {drop:+.1f} %")
    print("(the paper reports drops of up to 59.22 % under high-burst network loads)")


if __name__ == "__main__":
    main()
