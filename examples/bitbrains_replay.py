"""Bitbrains replay: a realistic data-centre day under hybrid scaling.

Recreates the paper's Section VI-B evaluation: generate the synthetic
GWA-T-12 Bitbrains ``Rnd`` trace (500 managed-hosting VMs in the original;
scaled down here), re-purpose the VM usage series as request load on a
fleet of mixed CPU+memory microservices, and replay it under
HyScale_CPU+Mem with an SLA attached.  Prints the Figure 9 aggregate shape
and the Figure 10 run statistics, plus SLA adherence and penalty owed.

Run with::

    python examples/bitbrains_replay.py
"""

import numpy as np

from repro import Simulation, SimulationConfig, Sla, evaluate_sla
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.core import HyScaleCpuMem
from repro.workloads import generate_bitbrains_trace
from repro.workloads.bitbrains import bitbrains_service_loads


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render a series as a unicode sparkline (Figure 9 at a glance)."""
    blocks = " .:-=+*#%@"
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    lo, hi = float(resampled.min()), float(resampled.max())
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in resampled)


def main() -> None:
    trace = generate_bitbrains_trace(n_vms=100, duration=600.0, interval=10.0, seed=3)
    cpu = trace.aggregate_cpu()
    mem = trace.aggregate_mem() * 100.0

    print(f"synthetic Bitbrains Rnd trace: {trace.n_vms} VMs, {trace.duration:.0f} s")
    print(f"cpu % [{cpu.min():5.1f} .. {cpu.max():5.1f}]  {sparkline(cpu)}")
    print(f"mem % [{mem.min():5.1f} .. {mem.max():5.1f}]  {sparkline(mem)}")
    print()

    loads = bitbrains_service_loads(trace, n_services=6, base_rate=8.0)
    specs = [
        MicroserviceSpec(
            name=load.service,
            cpu_request=0.5,
            mem_limit=512.0,
            net_rate=50.0,
            min_replicas=1,
            max_replicas=12,
            target_utilization=0.5,
            profile="mixed",
        )
        for load in loads
    ]

    sim = Simulation.build(
        config=SimulationConfig(cluster=ClusterConfig(worker_nodes=8), seed=3),
        specs=specs,
        loads=loads,
        policy=HyScaleCpuMem(),
        workload_label="bitbrains-replay",
    )
    summary = sim.run(duration=600.0)

    print(f"requests handled : {summary.total_requests}")
    print(f"avg response     : {summary.avg_response_time:.3f} s")
    print(f"failed           : {summary.percent_failed:.2f} %")
    print(f"vertical resizes : {summary.vertical_scale_ops}")
    print(f"replicas added   : {summary.horizontal_scale_ups}")

    sla = Sla(response_time_target=3.0, availability_target=0.998, penalty_per_violation=0.02)
    report = evaluate_sla(sim.collector, sla)
    print()
    print(f"SLA adherence    : {report.adherence:.4f}")
    print(f"availability ok  : {report.availability_met} ({report.availability:.4f})")
    print(f"penalty owed     : ${report.total_penalty:.2f}")


if __name__ == "__main__":
    main()
