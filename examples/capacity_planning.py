"""Capacity planning: how many machines does this workload really need?

The data-centre question behind the whole paper (Section I: machines cost
capex, power, and housing; SLA violations cost penalties).  We sweep the
worker-fleet size for a fixed bursty workload under HyScale, price each
fleet with the cost model, and print the sweet spot — where adding machines
stops buying SLA adherence faster than it burns money.

Run with::

    python examples/capacity_planning.py
"""

from repro import HyScaleCpuMem, Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.experiments.report import format_table
from repro.metrics import Sla
from repro.metrics.costs import evaluate_costs
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

FLEET_SIZES = (4, 6, 8, 12, 16)
SLA = Sla(response_time_target=5.0, penalty_per_violation=0.01)


def run_fleet(worker_nodes: int):
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=worker_nodes), seed=31)
    specs = [MicroserviceSpec(name=f"svc-{i}", max_replicas=12) for i in range(4)]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=6.0, peak=16.0, period=150.0, duty=0.3, phase=i * 37.5, ramp=6.0),
        )
        for i, spec in enumerate(specs)
    ]
    sim = Simulation.build(
        config=config, specs=specs, loads=loads, policy=HyScaleCpuMem(),
        workload_label=f"fleet-{worker_nodes}",
    )
    summary = sim.run(300.0)
    costs = evaluate_costs(sim.collector, SLA)
    return summary, costs


def main() -> None:
    rows = []
    best = None
    for nodes in FLEET_SIZES:
        print(f"simulating a {nodes}-machine fleet ...")
        summary, costs = run_fleet(nodes)
        rows.append(
            [
                str(nodes),
                f"{summary.avg_response_time:.3f}",
                f"{summary.percent_failed:.2f}",
                f"{summary.availability:.4f}",
                f"{costs.energy_kwh:.3f}",
                str(costs.sla_violations),
                f"${costs.total_cost:.3f}",
            ]
        )
        if best is None or costs.total_cost < best[1].total_cost:
            best = (nodes, costs)

    print()
    print(
        format_table(
            ["machines", "avg resp (s)", "failed %", "availability", "kWh", "violations", "total cost"],
            rows,
        )
    )
    print()
    assert best is not None
    print(f"cheapest fleet for this workload: {best[0]} machines (${best[1].total_cost:.3f}/run)")
    print("below it, SLA penalties dominate; above it, idle power does.")


if __name__ == "__main__":
    main()
