"""SLO watchdog: burn-rate alerts over a Bitbrains replay.

Streams live telemetry while replaying a synthetic GWA-T-12 Bitbrains
trace under HyScale_CPU+Mem, with an aggressive SLA attached so the spiky
trace actually burns error budget.  The :class:`repro.telemetry.SloTracker`
evaluates the classic SRE multiwindow rules (a fast page and a slow
ticket) every sampling interval; alert transitions are deterministic,
sim-timestamped events, printed here as the watchdog's incident log.

Demonstrates the full telemetry surface in ~80 lines: a recording
:class:`~repro.telemetry.MetricRegistry`, SLO burn-rate tracking, the
``top``-style frame renderer, and the OpenMetrics/JSONL exporters.

Run with::

    python examples/slo_watchdog.py
"""

from repro import Simulation, SimulationConfig, Sla
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.telemetry import (
    BurnWindow,
    MetricRegistry,
    SloTracker,
    render_openmetrics,
    render_top,
    snapshot_to_jsonl,
)
from repro.workloads import generate_bitbrains_trace
from repro.workloads.bitbrains import bitbrains_service_loads


def main() -> None:
    trace = generate_bitbrains_trace(n_vms=60, duration=420.0, interval=10.0, seed=7)
    loads = bitbrains_service_loads(trace, n_services=3, base_rate=10.0)
    specs = [
        MicroserviceSpec(
            name=load.service,
            cpu_request=0.5,
            mem_limit=512.0,
            net_rate=50.0,
            min_replicas=1,
            max_replicas=4,
            target_utilization=0.5,
            profile="mixed",
        )
        for load in loads
    ]

    # A tight SLA (1.5 s target, 99 % availability) plus short horizons:
    # the spiky trace will overrun the target and burn budget visibly.
    sla = Sla(response_time_target=1.5, availability_target=0.99)
    registry = MetricRegistry()
    slo = SloTracker(
        sla,
        windows=(
            BurnWindow(name="fast", horizon=60.0, threshold=10.0),
            BurnWindow(name="slow", horizon=240.0, threshold=4.0),
        ),
    )

    sim = Simulation.build(
        config=SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=7),
        specs=specs,
        loads=loads,
        policy="hybridmem",
        workload_label="slo-watchdog",
        telemetry=registry,
        slo=slo,
    )
    summary = sim.run(duration=420.0)
    now = sim.engine.clock.now

    print(render_top(registry, now=now, slo=slo, title="slo-watchdog"))

    print("incident log (burn-rate alert transitions):")
    alerts = slo.alerts()
    for alert in alerts:
        print(
            f"  t={alert.time:6.1f}s  {alert.service:<14} {alert.window:<5} "
            f"{alert.state.upper():<9} burn={alert.burn_rate:6.2f} (threshold {alert.threshold})"
        )
    if not alerts:
        print("  (no alerts fired — loosen the SLA to see the watchdog bite)")

    fired = sum(1 for a in alerts if a.state == "firing")
    exposition = render_openmetrics(registry)
    snapshot = snapshot_to_jsonl(registry, now=now, alerts=alerts)
    print()
    print(f"requests handled : {summary.total_requests}")
    print(f"alerts fired     : {fired}")
    print(f"openmetrics      : {len(exposition.splitlines())} lines (# EOF terminated)")
    print(f"jsonl snapshot   : {len(snapshot.splitlines())} lines, schema repro.telemetry/1")


if __name__ == "__main__":
    main()
