"""Flash sale: spiky storefront traffic under all four autoscalers.

The paper's motivating scenario — "data centres become over-encumbered
during peak usage hours and underutilized during off-peak hours" — at its
sharpest: a retail flash sale where checkout traffic spikes to several
times its baseline every few minutes.  We run the same fleet of CPU-bound
storefront services under Kubernetes HPA, both HyScale hybrids, and the
network scaler, then print the Figure-6-style comparison and the headline
speedups.

Run with::

    python examples/flash_sale.py
"""

from repro import SimulationConfig, run_experiment
from repro.analysis import compare_runs
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.experiments.configs import make_policy
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

SERVICES = ("storefront", "checkout", "inventory", "recommendations")


def build_fleet() -> tuple[list[MicroserviceSpec], list[ServiceLoad]]:
    """Four CPU-bound services; each spikes at a different moment."""
    specs, loads = [], []
    for i, name in enumerate(SERVICES):
        specs.append(
            MicroserviceSpec(
                name=name,
                cpu_request=0.5,
                mem_limit=512.0,
                net_rate=50.0,
                min_replicas=1,
                max_replicas=12,
                target_utilization=0.5,
                profile="cpu_bound",
            )
        )
        loads.append(
            ServiceLoad(
                service=name,
                profile=CPU_BOUND,
                pattern=HighBurstLoad(
                    base=5.0,
                    peak=18.0,
                    period=150.0,
                    duty=0.3,
                    phase=i * 150.0 / len(SERVICES),
                    ramp=6.0,
                ),
            )
        )
    return specs, loads


def main() -> None:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=8), seed=7)
    specs, loads = build_fleet()

    summaries = {}
    for algorithm in ("kubernetes", "hybrid", "hybridmem", "network"):
        print(f"running flash sale under {algorithm} ...")
        summaries[algorithm] = run_experiment(
            config=config,
            specs=specs,
            loads=loads,
            policy=make_policy(algorithm, config),
            duration=300.0,
            workload_label="flash-sale",
        )

    report = compare_runs("flash-sale", summaries)
    print()
    print(report.to_table())
    print()
    for name, speedup in sorted(report.speedups().items()):
        if name != "kubernetes":
            print(f"{name:10s} speedup over kubernetes: {speedup:.2f}x")
    print(f"fastest algorithm: {report.fastest()}")


if __name__ == "__main__":
    main()
