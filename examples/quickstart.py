"""Quickstart: autoscale one CPU-bound microservice with HyScale.

Builds the smallest meaningful deployment — one microservice on a small
cluster under a gently swelling client load — runs the HyScale_CPU+Mem
hybrid autoscaler for two simulated minutes, and prints the user-perceived
statistics the paper reports (response times, failure breakdown) plus the
scaling actions the MONITOR took.

Run with::

    python examples/quickstart.py
"""

from repro import HyScaleCpuMem, Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.workloads import CPU_BOUND, LowBurstLoad, ServiceLoad


def main() -> None:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=42)

    # One microservice: starts at 0.5 cores / 512 MiB per replica, may grow
    # to 8 replicas, targets 50 % utilization (the paper's setting).
    spec = MicroserviceSpec(
        name="checkout",
        cpu_request=0.5,
        mem_limit=512.0,
        net_rate=50.0,
        min_replicas=1,
        max_replicas=8,
        target_utilization=0.5,
        profile="cpu_bound",
    )

    # Clients arrive at ~8 req/s with a +/-30 % swell every two minutes.
    load = ServiceLoad(
        service="checkout",
        profile=CPU_BOUND,
        pattern=LowBurstLoad(base=8.0, amplitude=0.3, period=120.0),
    )

    sim = Simulation.build(
        config=config,
        specs=[spec],
        loads=[load],
        policy=HyScaleCpuMem(),
        workload_label="quickstart",
    )
    summary = sim.run(duration=120.0)

    print(f"requests handled : {summary.total_requests}")
    print(f"avg response     : {summary.avg_response_time:.3f} s")
    print(f"p95 response     : {summary.p95_response_time:.3f} s")
    print(f"failed           : {summary.percent_failed:.2f} %")
    print(f"availability     : {summary.availability:.4f}")
    print(f"vertical resizes : {summary.vertical_scale_ops}")
    print(f"replicas added   : {summary.horizontal_scale_ups}")
    print(f"replicas removed : {summary.horizontal_scale_downs}")


if __name__ == "__main__":
    main()
