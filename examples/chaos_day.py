"""Chaos day: surviving machine loss during a traffic spike.

Exercises the dynamic-fleet support (the paper's Section VII future work):
a storefront fleet takes its usual spiky traffic while, mid-spike, one of
the busiest machines dies; two minutes later the operations team brings a
replacement online.  HyScale must rebuild the lost capacity on the
surviving machines, then spread back out.

Run with::

    python examples/chaos_day.py
"""

from repro import HyScaleCpuMem, Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

CRASH_AT = 90.0
REPLACEMENT_AT = 210.0


def main() -> None:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=5), seed=13)
    specs = [
        MicroserviceSpec(name=f"svc-{i}", min_replicas=2, max_replicas=10)
        for i in range(3)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=150.0, duty=0.3, phase=i * 50.0, ramp=6.0),
        )
        for i, spec in enumerate(specs)
    ]

    sim = Simulation.build(
        config=config, specs=specs, loads=loads, policy=HyScaleCpuMem(), workload_label="chaos-day"
    )

    # Find the machine hosting the most replicas and schedule its demise.
    busiest = max(sim.cluster.sorted_nodes(), key=lambda n: len(n.containers))
    sim.faults.schedule_crash(CRASH_AT, busiest.name)
    sim.faults.schedule_add(
        REPLACEMENT_AT, "replacement-node", capacity=ResourceVector(4.0, 8192.0, 1000.0)
    )

    summary = sim.run(360.0)

    print(f"crashed machine      : {busiest.name} at t={CRASH_AT:.0f}s")
    print(f"requests lost to it  : {sim.faults.log.lost_requests}")
    print(f"replacement online   : t={REPLACEMENT_AT:.0f}s")
    print()
    print(f"requests handled     : {summary.total_requests}")
    print(f"avg response         : {summary.avg_response_time:.3f} s")
    print(f"removal failures     : {summary.percent_removal_failures:.2f} %")
    print(f"connection failures  : {summary.percent_connection_failures:.2f} %")
    print(f"availability         : {summary.availability:.4f}")
    print(f"replicas added       : {summary.horizontal_scale_ups}")
    print(f"vertical resizes     : {summary.vertical_scale_ops}")
    for service in sim.cluster.sorted_services():
        nodes = sorted(
            {sim.client.node_name_of(c.container_id) for c in service.active_replicas()}
        )
        print(f"  {service.name}: {service.replica_count} replicas on {nodes}")

    from repro.metrics.events import render_event_log

    print()
    print(f"scaling audit trail around the crash (t={CRASH_AT - 10:.0f}..{CRASH_AT + 40:.0f}s):")
    window = sim.collector.events.between(CRASH_AT - 10.0, CRASH_AT + 40.0)
    from repro.metrics.events import ScalingEventLog

    excerpt = ScalingEventLog()
    for event in window:
        excerpt.record(event)
    print(render_event_log(excerpt, limit=12))


if __name__ == "__main__":
    main()
