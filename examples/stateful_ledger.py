"""Stateful ledger: why state tilts the scaling decision vertical.

A payments ledger must keep every replica consistent — each extra copy adds
synchronization work to every request, and a new replica cannot serve until
it has pulled the full state.  This is the scenario Section IV-B uses to
motivate hybrid scaling: "the best scaling decisions are those that bring
forth more resources to a particular container (i.e., vertical scaling)".

We run the same bursty ledger workload twice — once stateless, once
stateful — under horizontal-only Kubernetes and the HyScale hybrid, and
print how the gap moves.

Run with::

    python examples/stateful_ledger.py
"""

from repro import HyScaleCpu, KubernetesHpa, SimulationConfig, run_experiment
from repro.analysis import compare_runs
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad


def run_variant(stateful: bool) -> dict:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=6), seed=21)
    specs = [
        MicroserviceSpec(
            name=f"ledger-{i}",
            max_replicas=12,
            stateful=stateful,
            state_size_mb=512.0,
        )
        for i in range(3)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=5.0, peak=12.0, period=150.0, duty=0.3, phase=i * 50.0, ramp=6.0),
        )
        for i, spec in enumerate(specs)
    ]
    summaries = {}
    for policy in (KubernetesHpa(), HyScaleCpu()):
        summaries[policy.name] = run_experiment(
            config=config,
            specs=specs,
            loads=loads,
            policy=policy,
            duration=300.0,
            workload_label=f"ledger/stateful={stateful}",
        )
    return summaries


def main() -> None:
    for stateful in (False, True):
        label = "STATEFUL" if stateful else "STATELESS"
        summaries = run_variant(stateful)
        report = compare_runs(f"ledger ({label.lower()})", summaries)
        print(f"=== {label} ===")
        print(report.to_table())
        speedup = report.speedups()["hybrid"]
        print(f"hybrid speedup over kubernetes: {speedup:.2f}x")
        print()
    print(
        "State makes horizontal scaling expensive (consistency + transfer),\n"
        "so the hybrid's fine-grained vertical scaling pulls further ahead."
    )


if __name__ == "__main__":
    main()
