"""Tests for the iptables mangle-table model."""

import pytest

from repro.errors import NetworkSimError
from repro.netsim.iptables import IptablesTable, MarkRule


class TestRules:
    def test_add_and_resolve(self):
        table = IptablesTable()
        table.add_rule("c1", "1:10")
        assert table.has_rule("c1")
        assert table.class_of("c1") == "1:10"

    def test_marks_unique_and_positive(self):
        table = IptablesTable()
        a = table.add_rule("c1", "1:10")
        b = table.add_rule("c2", "1:20")
        assert a.mark != b.mark
        assert a.mark > 0 and b.mark > 0

    def test_duplicate_rule_rejected(self):
        table = IptablesTable()
        table.add_rule("c1", "1:10")
        with pytest.raises(NetworkSimError):
            table.add_rule("c1", "1:20")

    def test_delete_rule(self):
        table = IptablesTable()
        table.add_rule("c1", "1:10")
        table.delete_rule("c1")
        assert not table.has_rule("c1")
        with pytest.raises(NetworkSimError):
            table.class_of("c1")

    def test_delete_unknown_rejected(self):
        with pytest.raises(NetworkSimError):
            IptablesTable().delete_rule("ghost")

    def test_rules_ordered_by_mark(self):
        table = IptablesTable()
        table.add_rule("b", "1:1")
        table.add_rule("a", "1:2")
        marks = [r.mark for r in table.rules()]
        assert marks == sorted(marks)

    def test_mark_rule_validation(self):
        with pytest.raises(NetworkSimError):
            MarkRule("c", 0)

    def test_mark_reuse_after_delete_not_required(self):
        table = IptablesTable()
        first = table.add_rule("c1", "1:1")
        table.delete_rule("c1")
        second = table.add_rule("c2", "1:2")
        assert second.mark != first.mark  # marks are never recycled
