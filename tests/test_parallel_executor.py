"""Tests for the parallel sweep executor, shard cache, and merged results.

The headline contract is byte-identity: a sweep run with worker processes
produces the same summaries, the same canonical JSON dump, and the same
merged telemetry snapshot as the serial run.  The cache tests pin hit/miss
accounting, resumability, and code-version invalidation; the failure tests
pin that a poisoned shard surfaces as a structured :class:`ShardError`
instead of a hung pool.
"""

import dataclasses
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.spec import RunSpec, SweepSpec
from repro.parallel import CODE_VERSION, ShardCache, ShardError, SweepExecutor, SweepResult
from repro.parallel.worker import run_shard_payload

#: One small 2x2x2 grid (workload x burst x algorithm) at smoke duration.
GRID_KWARGS = dict(
    workloads=("cpu", "network"),
    bursts=("low", "high"),
    algorithms=("kubernetes", "hybrid"),
    duration=30.0,
)


@pytest.fixture(scope="module")
def grid():
    return SweepSpec.from_grid(**GRID_KWARGS)


@pytest.fixture(scope="module")
def serial_result(grid):
    return grid.run(parallel=1, telemetry=True)


def poisoned_sweep(grid):
    """The grid with one shard's policy name corrupted (fails at build)."""
    shards = list(grid.shards)
    shards[2] = dataclasses.replace(shards[2], policy="no-such-policy")
    return SweepSpec(shards=tuple(shards), seed_mode=grid.seed_mode)


# ----------------------------------------------------------------------
# Byte-identity: parallel == serial
# ----------------------------------------------------------------------
class TestParallelIdentity:
    @pytest.fixture(scope="class")
    def parallel_result(self, grid):
        return grid.run(parallel=4, telemetry=True)

    def test_summaries_identical(self, serial_result, parallel_result):
        assert [s.to_dict() for s in parallel_result.summaries] == [
            s.to_dict() for s in serial_result.summaries
        ]

    def test_json_dump_identical(self, serial_result, parallel_result):
        assert parallel_result.to_json() == serial_result.to_json()

    def test_telemetry_snapshot_identical(self, serial_result, parallel_result):
        serial_lines = serial_result.telemetry_lines()
        assert serial_lines  # telemetry was actually collected
        assert parallel_result.telemetry_lines() == serial_lines

    def test_telemetry_lines_are_shard_stamped(self, serial_result):
        keys = {json.loads(line)["shard"] for line in serial_result.telemetry_lines()}
        assert keys == set(serial_result.sweep.keys)

    def test_merge_order_is_spec_order(self, grid, serial_result):
        assert [spec.key for spec, _ in serial_result.shards()] == list(grid.keys)


# ----------------------------------------------------------------------
# Shard cache
# ----------------------------------------------------------------------
class TestShardCache:
    def test_cold_run_misses_then_warm_run_hits(self, grid, serial_result, tmp_path):
        cold = grid.run(parallel=1, cache_dir=tmp_path)
        assert cold.cache_hits == 0
        warm = grid.run(parallel=1, cache_dir=tmp_path)
        assert warm.cache_hits == len(grid)
        assert all(warm.cached)
        # Telemetry fields differ (cold ran without collection), but the
        # summaries — the result — are identical to an uncached run.
        assert [s.to_dict() for s in warm.summaries] == [
            s.to_dict() for s in serial_result.summaries
        ]

    def test_partial_cache_resumes_only_missing_shards(self, grid, tmp_path):
        cache = ShardCache(tmp_path)
        first_two = SweepSpec(shards=grid.shards[:2], seed_mode=grid.seed_mode)
        first_two.run(parallel=1, cache_dir=tmp_path)
        resumed = grid.run(parallel=2, cache_dir=tmp_path)
        assert resumed.cached == (True, True) + (False,) * (len(grid) - 2)
        assert cache.load(grid.shards[-1]) is not None  # fresh shards stored

    def test_code_version_invalidates(self, grid, tmp_path):
        grid.run(parallel=1, cache_dir=tmp_path)
        other = grid.run(parallel=1, cache_dir=tmp_path, code_version="test/other-version")
        assert other.cache_hits == 0

    def test_telemetry_free_entry_misses_when_telemetry_requested(self, grid, tmp_path):
        shard = grid.shards[0]
        single = SweepSpec(shards=(shard,), seed_mode=grid.seed_mode)
        single.run(parallel=1, cache_dir=tmp_path)  # stored without telemetry
        cache = ShardCache(tmp_path)
        assert cache.load(shard) is not None
        assert cache.load(shard, need_telemetry=True) is None
        with_telemetry = single.run(parallel=1, cache_dir=tmp_path, telemetry=True)
        assert with_telemetry.cache_hits == 0
        assert with_telemetry.telemetry_lines()

    def test_key_is_content_addressed(self, grid):
        cache = ShardCache("unused", code_version=CODE_VERSION)
        a, b = grid.shards[0], grid.shards[1]
        assert cache.key_for(a) == cache.key_for(a)
        assert cache.key_for(a) != cache.key_for(b)
        assert cache.key_for(a) != ShardCache("unused", code_version="v2").key_for(a)

    def test_torn_entry_is_a_miss(self, grid, tmp_path):
        cache = ShardCache(tmp_path)
        shard = grid.shards[0]
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path_for(shard).write_text("{not json", encoding="utf-8")
        assert cache.load(shard) is None
        assert cache.misses == 1


# ----------------------------------------------------------------------
# Structured failure
# ----------------------------------------------------------------------
class TestShardFailure:
    def test_serial_poisoned_shard_raises_shard_error(self, grid):
        with pytest.raises(ShardError) as excinfo:
            poisoned_sweep(grid).run(parallel=1)
        assert excinfo.value.index == 2
        assert "no-such-policy" in excinfo.value.key
        assert excinfo.value.error_type

    def test_pool_poisoned_shard_raises_shard_error(self, grid):
        with pytest.raises(ShardError) as excinfo:
            poisoned_sweep(grid).run(parallel=2)
        assert excinfo.value.index == 2
        assert "no-such-policy" in excinfo.value.key

    def test_worker_returns_error_envelope_not_exception(self, grid):
        payload = dataclasses.replace(grid.shards[0], policy="no-such-policy").to_dict()
        envelope = run_shard_payload(payload)
        assert envelope["ok"] is False
        assert envelope["error"]["type"]
        assert "no-such-policy" in envelope["error"]["message"]
        assert envelope["error"]["traceback"]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError):
            SweepExecutor(jobs=0)


# ----------------------------------------------------------------------
# SweepResult grouping and codec
# ----------------------------------------------------------------------
class TestSweepResult:
    def test_by_label_groups_workloads(self, serial_result):
        grouped = serial_result.by_label()
        assert sorted(grouped) == [
            "cpu/high-burst",
            "cpu/low-burst",
            "network/high-burst",
            "network/low-burst",
        ]
        for runs in grouped.values():
            assert sorted(runs) == ["hybrid", "kubernetes"]

    def test_by_policy_requires_single_workload(self, serial_result):
        with pytest.raises(ExperimentError):
            serial_result.by_policy()

    def test_by_key_covers_every_shard(self, grid, serial_result):
        assert set(serial_result.by_key()) == set(grid.keys)

    def test_round_trip(self, serial_result):
        decoded = SweepResult.from_json(serial_result.to_json())
        assert decoded.to_json() == serial_result.to_json()
        assert decoded.cache_hits == serial_result.cache_hits

    def test_progress_protocol(self, grid, tmp_path):
        events: list[tuple[str, str]] = []
        grid.run(
            parallel=1,
            cache_dir=tmp_path,
            progress=lambda shard, status: events.append((shard.key, status)),
        )
        assert [e for e in events if e[1] == "running"]
        assert [e for e in events if e[1] == "done"]
        events.clear()
        grid.run(
            parallel=1,
            cache_dir=tmp_path,
            progress=lambda shard, status: events.append((shard.key, status)),
        )
        assert {status for _, status in events} == {"cached"}

    def test_compare_sweep_groups_reports(self, serial_result):
        from repro.analysis.compare import compare_sweep

        reports = compare_sweep(serial_result)
        assert sorted(reports) == sorted(serial_result.by_label())
        for report in reports.values():
            assert report.baseline == "kubernetes"
            assert set(report.speedups()) == {"kubernetes", "hybrid"}

    def test_write_telemetry_jsonl(self, serial_result, tmp_path):
        path = tmp_path / "sweep_telemetry.jsonl"
        count = serial_result.write_telemetry_jsonl(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert count == len(lines) == len(serial_result.telemetry_lines())
