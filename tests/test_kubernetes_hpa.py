"""Tests for the Kubernetes HPA controller (Section IV-A1)."""

import pytest

from repro.core.actions import AddReplica, RemoveReplica
from repro.core.kubernetes import KubernetesHpa
from repro.errors import PolicyError

from tests.conftest import make_replica, make_service, make_view


def hpa(**kwargs) -> KubernetesHpa:
    return KubernetesHpa(**kwargs)


def one_service_view(replicas, now=100.0, **service_kwargs):
    return make_view(services=(make_service("svc", replicas, **service_kwargs),), now=now)


class TestFormula:
    def test_paper_formula(self):
        """NumReplicas = ceil(sum(usage_r / requested_r) / Target)."""
        service = make_service(
            "svc",
            (
                make_replica("a", cpu_request=0.5, cpu_usage=0.5),  # util 1.0
                make_replica("b", cpu_request=0.5, cpu_usage=0.25),  # util 0.5
            ),
            target=0.5,
        )
        # sum(util) = 1.5; 1.5 / 0.5 = 3.
        assert hpa().desired_replicas(service) == 3

    def test_ceiling_rounds_up(self):
        service = make_service(
            "svc", (make_replica("a", cpu_request=1.0, cpu_usage=0.55),), target=0.5
        )
        # 0.55 / 0.5 = 1.1 -> ceil = 2.
        assert hpa().desired_replicas(service) == 2

    def test_clamped_to_bounds(self):
        hot = make_service(
            "svc", (make_replica("a", cpu_request=0.1, cpu_usage=4.0),), max_replicas=5, target=0.5
        )
        assert hpa().desired_replicas(hot) == 5
        cold = make_service(
            "svc",
            (make_replica("a", cpu_usage=0.0), make_replica("b", cpu_usage=0.0)),
            min_replicas=2,
            target=0.5,
        )
        assert hpa().desired_replicas(cold) == 2

    def test_tolerance_band(self):
        """|avg(util)/target - 1| <= 0.1 suppresses rescaling."""
        service = make_service(
            "svc", (make_replica("a", cpu_request=1.0, cpu_usage=0.52),), target=0.5
        )
        assert hpa().within_tolerance(service)
        service = make_service(
            "svc", (make_replica("a", cpu_request=1.0, cpu_usage=0.58),), target=0.5
        )
        assert not hpa().within_tolerance(service)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(PolicyError):
            KubernetesHpa(tolerance=-0.1)


class TestDecisions:
    def test_scale_up_emits_adds(self):
        view = one_service_view(
            (make_replica("a", cpu_request=0.5, cpu_usage=1.0),), now=100.0
        )
        actions = hpa().decide(view)
        adds = [a for a in actions if isinstance(a, AddReplica)]
        # util 2.0 / 0.5 = 4 desired, 1 current -> 3 adds.
        assert len(adds) == 3
        assert all(a.cpu_request == 0.5 for a in adds)  # copies base allocation
        assert all(not a.exclude_hosting for a in adds)

    def test_scale_down_removes_newest_first(self):
        replicas = tuple(
            make_replica(f"c{i}", cpu_request=0.5, cpu_usage=0.02) for i in range(4)
        )
        view = one_service_view(replicas)
        actions = hpa().decide(view)
        removals = [a for a in actions if isinstance(a, RemoveReplica)]
        assert len(removals) == 3  # down to min_replicas = 1
        assert removals[0].container_id == "c3"

    def test_within_tolerance_no_actions(self):
        view = one_service_view((make_replica("a", cpu_request=1.0, cpu_usage=0.5),))
        assert hpa().decide(view) == []

    def test_bootstraps_empty_service(self):
        view = make_view(services=(make_service("svc", (), min_replicas=2),))
        actions = hpa().decide(view)
        assert len([a for a in actions if isinstance(a, AddReplica)]) == 2

    def test_booting_replicas_count_toward_current(self):
        view = one_service_view(
            (
                make_replica("a", cpu_request=0.5, cpu_usage=0.5),  # util 1 -> desired 2
                make_replica("b", booting=True),
            )
        )
        # Desired 2 == current 2: no churn while the new replica boots.
        assert hpa().decide(view) == []


class TestAntiThrash:
    def test_up_interval_blocks_rapid_scale_up(self):
        policy = hpa(scale_up_interval=3.0)
        view = one_service_view((make_replica("a", cpu_request=0.5, cpu_usage=1.0),), now=100.0)
        assert policy.decide(view) != []
        view2 = one_service_view((make_replica("a", cpu_request=0.5, cpu_usage=1.0),), now=101.0)
        assert policy.decide(view2) == []  # within 3 s
        view3 = one_service_view((make_replica("a", cpu_request=0.5, cpu_usage=1.0),), now=104.0)
        assert policy.decide(view3) != []

    def test_down_interval_blocks_rapid_scale_down(self):
        policy = hpa(scale_down_interval=50.0)
        replicas = tuple(make_replica(f"c{i}", cpu_usage=0.01) for i in range(3))
        assert policy.decide(one_service_view(replicas, now=100.0)) != []
        assert policy.decide(one_service_view(replicas, now=120.0)) == []
        assert policy.decide(one_service_view(replicas, now=151.0)) != []

    def test_paper_intervals_default(self):
        policy = hpa()
        assert policy.guard.up_interval == 3.0
        assert policy.guard.down_interval == 50.0


class TestMultiService:
    def test_services_reconciled_independently(self):
        view = make_view(
            services=(
                make_service("hot", (make_replica("h1", node="n0", cpu_request=0.5, cpu_usage=1.0),)),
                make_service("cold", tuple(
                    make_replica(f"c{i}", node="n1", cpu_usage=0.01) for i in range(2)
                )),
            )
        )
        actions = hpa().decide(view)
        adds = [a for a in actions if isinstance(a, AddReplica)]
        removals = [a for a in actions if isinstance(a, RemoveReplica)]
        assert adds and all(a.service == "hot" for a in adds)
        assert removals and all(r.container_id.startswith("c") for r in removals)
