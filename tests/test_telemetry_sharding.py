"""Tests for sharded metric retention (``repro.telemetry.sharding``).

The contract under test is byte-equality: a ``ShardedMetricRegistry`` fed
the same writes and captures as an unsharded ``MetricRegistry`` must
produce identical OpenMetrics documents and JSONL snapshots — whatever
the shard count — and k-way-merging per-shard snapshot parts must recover
the unsharded byte layout exactly.
"""

import json

import pytest

from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig, SimulationConfig
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.errors import TelemetryError
from repro.experiments.runner import Simulation
from repro.telemetry import (
    MetricRegistry,
    ShardedMetricRegistry,
    merge_shard_snapshots,
    render_openmetrics,
    shard_index,
    snapshot_to_jsonl,
)
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

#: The shard counts every byte-equality property is checked against:
#: degenerate (1), even split (2), and a prime that scatters series (7).
SHARD_COUNTS = (1, 2, 7)


def _populate(registry: MetricRegistry, *, captures: int = 1) -> MetricRegistry:
    """Apply one fixed write/capture script to any registry kind."""
    routed = registry.counter("routed", "Requests routed.", labels=("node",))
    backlog = registry.gauge("backlog", "Backlog depth.", labels=("node",))
    latency = registry.histogram(
        "latency_seconds", "Latency.", buckets=(0.5, 1.0), unit="seconds"
    )
    wall = registry.gauge("wall_seconds", "Wall.", volatile=True)
    for step in range(captures):
        for i in range(5):
            routed.labels(f"n{i}").inc(i + step + 1)
            backlog.labels(f"n{i}").set(float(step * 10 + i))
        latency.observe(0.2)
        latency.observe(0.7 + step)
        wall.labels().set(1.23 + step)
        registry.capture(60.0 * (step + 1))
    return registry


def _exports(registry: MetricRegistry, *, now: float) -> tuple[str, str]:
    return (
        render_openmetrics(registry, include_volatile=True),
        snapshot_to_jsonl(registry, now=now),
    )


class TestByteEquality:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_exports_match_the_unsharded_registry(self, shards):
        reference = _populate(MetricRegistry())
        candidate = _populate(ShardedMetricRegistry(shards=shards))
        assert _exports(candidate, now=60.0) == _exports(reference, now=60.0)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_merged_shard_snapshots_recover_the_unsharded_bytes(self, shards):
        reference = _populate(MetricRegistry())
        candidate = _populate(ShardedMetricRegistry(shards=shards))
        parts = [
            candidate.shard_snapshot(i, now=60.0) for i in range(candidate.shard_count)
        ]
        assert merge_shard_snapshots(parts) == snapshot_to_jsonl(reference, now=60.0)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_ring_wraparound_matches(self, shards):
        # retention=3 with 6 captures: every ring wraps twice; the stale
        # points trimmed must be the same on both sides.
        reference = _populate(MetricRegistry(retention=3), captures=6)
        candidate = _populate(ShardedMetricRegistry(shards=shards, retention=3), captures=6)
        assert _exports(candidate, now=360.0) == _exports(reference, now=360.0)
        child = candidate.get("routed").peek("n0")
        assert len(child.history) == 3

    def test_histogram_buckets_survive_sharding(self):
        candidate = _populate(ShardedMetricRegistry(shards=7))
        families = json.loads(
            [
                line
                for line in snapshot_to_jsonl(candidate, now=60.0).splitlines()
                if '"latency_seconds"' in line
            ][0]
        )
        # [bound, cumulative] pairs: 0.2 <= 0.5, 0.7 <= 1.0, +Inf as null.
        assert families["buckets"] == [[0.5, 1], [1.0, 2], [None, 2]]


class TestRegistryApi:
    def test_rejects_fewer_than_one_shard(self):
        with pytest.raises(TelemetryError):
            ShardedMetricRegistry(shards=0)

    def test_registration_is_idempotent(self):
        registry = ShardedMetricRegistry(shards=3)
        first = registry.counter("hits", "Hits.")
        again = registry.counter("hits", "Hits.")
        assert first is again
        assert len(registry) == 1

    def test_conflicting_redeclaration_raises(self):
        registry = ShardedMetricRegistry(shards=3)
        registry.counter("hits", "Hits.")
        with pytest.raises(TelemetryError):
            registry.gauge("hits", "Hits.")
        with pytest.raises(TelemetryError):
            registry.counter("hits", "Hits.", labels=("node",))

    def test_labels_and_peek_route_to_the_same_shard(self):
        registry = ShardedMetricRegistry(shards=7)
        family = registry.counter("routed", "Routed.", labels=("node",))
        family.labels("n3").inc(2.0)
        assert family.peek("n3") is family.labels("n3")
        assert family.peek("n4") is None
        assert len(family) == 1

    def test_children_iterate_in_global_sorted_order(self):
        registry = ShardedMetricRegistry(shards=7)
        family = registry.counter("routed", "Routed.", labels=("node",))
        for node in ("n4", "n0", "n2", "n1", "n3"):
            family.labels(node).inc()
        assert [values for values, _ in family.children()] == [
            ("n0",), ("n1",), ("n2",), ("n3",), ("n4",)
        ]

    def test_capture_rejects_time_going_backwards(self):
        registry = ShardedMetricRegistry(shards=2)
        registry.capture(10.0)
        with pytest.raises(TelemetryError):
            registry.capture(9.0)

    def test_shard_index_is_pinned(self):
        # crc32 layouts are part of the determinism contract: same series,
        # same shard, on every platform and in every process.
        assert shard_index("routed", ("n0",), 7) == 2
        assert shard_index("routed", ("n1",), 7) == 0
        assert shard_index("backlog", (), 7) == 0
        assert shard_index("routed", ("n0",), 2) == 0
        assert shard_index("backlog", (), 2) == 1


class TestMerge:
    def test_merge_rejects_invalid_json(self):
        with pytest.raises(TelemetryError, match="not valid JSON"):
            merge_shard_snapshots(["not json\n"])

    def test_merge_rejects_lines_without_a_name(self):
        with pytest.raises(TelemetryError, match="no series name"):
            merge_shard_snapshots(['{"schema": "x", "kind": "counter"}\n'])

    def test_merge_of_empty_parts_is_empty(self):
        assert merge_shard_snapshots(["", ""]) == ""

    def test_slo_alert_lines_are_appended_after_series(self):
        registry = _populate(ShardedMetricRegistry(shards=2))
        parts = [registry.shard_snapshot(i, now=60.0) for i in range(2)]
        alert = json.dumps({"kind": "slo_alert", "name": "availability"})
        parts[0] += alert + "\n"
        merged = merge_shard_snapshots(parts)
        lines = merged.splitlines()
        assert lines[-1] == alert
        assert all('"slo_alert"' not in line for line in lines[:-1])


class TestEndToEndSharding:
    def test_instrumented_run_is_byte_identical_to_unsharded(self):
        def run_once(registry: MetricRegistry) -> tuple[dict, str, str]:
            config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=7)
            specs = [
                MicroserviceSpec(
                    name=f"svc-{i}",
                    cpu_request=0.5,
                    mem_limit=512.0,
                    net_rate=50.0,
                    max_replicas=8,
                )
                for i in range(2)
            ]
            loads = [
                ServiceLoad(
                    service=spec.name,
                    profile=CPU_BOUND,
                    pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
                )
                for spec in specs
            ]
            simulation = Simulation.build(
                config=config,
                specs=specs,
                loads=loads,
                policy=HyScaleCpuMem(),
                workload_label="sharding-probe",
                telemetry=registry,
            )
            summary = simulation.run(60.0)
            now = simulation.engine.clock.now
            return (
                summary.to_dict(),
                render_openmetrics(registry),
                snapshot_to_jsonl(registry, now=now),
            )

        reference = run_once(MetricRegistry())
        sharded = run_once(ShardedMetricRegistry(shards=7))
        assert sharded == reference
        assert "sim_steps" in reference[1], "expected an instrumented run"
