"""Tests for live migration and the ElasticDocker-style comparator."""

import pytest

from repro import Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig
from repro.core.actions import MigrateReplica, VerticalScale
from repro.core.elasticdocker import ElasticDockerPolicy
from repro.errors import CapacityError, PolicyError
from repro.workloads import CPU_BOUND, ConstantLoad, ServiceLoad

from tests.conftest import make_node_view, make_replica, make_service, make_view


class TestMigrationMechanics:
    def build(self, rate=4.0):
        config = SimulationConfig(cluster=ClusterConfig(worker_nodes=3), seed=0)
        specs = [MicroserviceSpec(name="svc")]
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(rate))]
        return Simulation.build(
            config=config, specs=specs, loads=loads, policy=ElasticDockerPolicy()
        )

    def test_migrate_moves_container_with_requests(self):
        sim = self.build()
        container = sim.cluster.service("svc").active_replicas()[0]
        source = sim.client.node_name_of(container.container_id)
        from repro.workloads.requests import Request

        request = Request(service="svc", arrival_time=0.0, cpu_work=5.0, timeout=60.0)
        container.accept(request, 0.0)
        target = next(n for n in sim.cluster.sorted_nodes() if n.name != source)
        sim.client.migrate_replica(container.container_id, target.name, 1.0)
        assert sim.client.node_name_of(container.container_id) == target.name
        assert request in container.inflight  # survived the move
        assert not container.is_serving  # frozen for the checkpoint window

    def test_migration_freeze_thaws(self):
        sim = self.build()
        container = sim.cluster.service("svc").active_replicas()[0]
        source = sim.client.node_name_of(container.container_id)
        target = next(n for n in sim.cluster.sorted_nodes() if n.name != source)
        sim.client.migrate_replica(container.container_id, target.name, 1.0)
        sim.engine.run_for(3.0)  # freeze is 1 s
        assert container.is_serving

    def test_migrate_to_full_node_rejected(self):
        sim = self.build()
        container = sim.cluster.service("svc").active_replicas()[0]
        source = sim.client.node_name_of(container.container_id)
        target = next(n for n in sim.cluster.sorted_nodes() if n.name != source)
        filler = sim.client.run_replica(
            "svc", target.name, cpu_request=3.9, mem_limit=7800.0, net_rate=900.0, now=0.0
        )
        with pytest.raises(CapacityError):
            sim.client.migrate_replica(container.container_id, target.name, 1.0)

    def test_migrate_to_same_node_is_noop(self):
        sim = self.build()
        container = sim.cluster.service("svc").active_replicas()[0]
        source = sim.client.node_name_of(container.container_id)
        sim.client.migrate_replica(container.container_id, source, 1.0)
        assert container.is_serving  # no freeze


class TestPolicyDecisions:
    def test_grows_hot_replica_in_place(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", cpu_request=1.0, cpu_usage=1.0),)),
            )
        )
        actions = ElasticDockerPolicy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert verticals and verticals[0].cpu_request == pytest.approx(1.5)

    def test_shrinks_idle_replica(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_request=2.0, cpu_usage=0.1, mem_usage=100.0),),
                ),
            )
        )
        actions = ElasticDockerPolicy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert verticals and verticals[0].cpu_request == pytest.approx(2.0 / 1.5)

    def test_migrates_when_host_full(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", node="n0", cpu_request=3.5, cpu_usage=3.5),)),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(4.0, 1024.0, 50.0), services=("svc",)),
                make_node_view("n1"),
            ),
        )
        actions = ElasticDockerPolicy().decide(view)
        migrations = [a for a in actions if isinstance(a, MigrateReplica)]
        assert migrations and migrations[0].target_node == "n1"
        # And it grows after landing.
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert verticals and verticals[0].cpu_request > 3.5

    def test_caps_growth_when_nowhere_to_go(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", node="n0", cpu_request=3.0, cpu_usage=3.5),)),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(3.5, 1024.0, 50.0), services=("svc",)),
            ),
        )
        actions = ElasticDockerPolicy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert verticals and verticals[0].cpu_request == pytest.approx(3.5)
        assert not any(isinstance(a, MigrateReplica) for a in actions)

    def test_steady_replica_untouched(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_request=1.0, cpu_usage=0.5, mem_usage=300.0),),
                ),
            )
        )
        assert ElasticDockerPolicy().decide(view) == []

    def test_never_changes_replica_counts(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", cpu_request=0.5, cpu_usage=4.0),)),
            )
        )
        from repro.core.actions import AddReplica, RemoveReplica

        actions = ElasticDockerPolicy().decide(view)
        assert not any(isinstance(a, (AddReplica, RemoveReplica)) for a in actions)

    def test_parameter_validation(self):
        with pytest.raises(PolicyError):
            ElasticDockerPolicy(high_watermark=0.2, low_watermark=0.3)
        with pytest.raises(PolicyError):
            ElasticDockerPolicy(step=1.0)
        with pytest.raises(PolicyError):
            ElasticDockerPolicy(min_cpu=0.0)


class TestEndToEnd:
    def test_handles_single_machine_load(self):
        """Demand fitting one machine: vertical scaling alone suffices."""
        config = SimulationConfig(cluster=ClusterConfig(worker_nodes=3), seed=2)
        specs = [MicroserviceSpec(name="svc")]
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(8.0))]
        sim = Simulation.build(config=config, specs=specs, loads=loads, policy=ElasticDockerPolicy())
        summary = sim.run(90.0)
        assert summary.availability > 0.99
        assert summary.vertical_scale_ops > 0
        assert summary.horizontal_scale_ups == 0

    def test_single_host_ceiling(self):
        """Demand beyond one machine: vertical-only cannot keep up — the
        paper's core argument for hybridization."""
        from repro.core.hyscale import HyScaleCpu
        from repro.experiments.runner import run_experiment

        config = SimulationConfig(cluster=ClusterConfig(worker_nodes=3), seed=2)
        specs = [MicroserviceSpec(name="svc", max_replicas=6)]
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(24.0))]  # ~6 cores
        elastic = run_experiment(
            config=config, specs=specs, loads=loads, policy=ElasticDockerPolicy(), duration=90.0
        )
        hybrid = run_experiment(
            config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=90.0
        )
        # Vertical-only hits the single-machine wall: mass timeouts.  The
        # hybrid replicates past it and keeps serving.
        assert hybrid.availability > 0.95
        assert elastic.availability < 0.7
        assert hybrid.completed > 2 * max(elastic.completed, 1)
