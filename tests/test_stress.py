"""Tests for the Section III stress containers."""

import pytest

from repro.cluster.stress import CpuStressContainer, NetStressContainer
from repro.workloads.requests import Request

from tests.conftest import make_container


class TestCpuStress:
    def test_always_saturates(self, overheads):
        stress = CpuStressContainer("stress", cpu_request=1.0, overheads=overheads)
        assert stress.cpu_demand(4.0) == 4.0

    def test_burns_whatever_granted(self, overheads):
        stress = CpuStressContainer("stress", cpu_request=1.0, overheads=overheads)
        stress.advance_compute(2.5, 1.0, 1.0)
        assert stress.cpu_usage == 2.5

    def test_contends_with_microservice(self, node, overheads):
        service = make_container("svc", cpu=1.0, overheads=overheads)
        stress = CpuStressContainer("stress", cpu_request=1.0, overheads=overheads)
        node.add_container(service, enforce_capacity=False)
        node.add_container(stress, enforce_capacity=False)
        request = Request(service="svc", arrival_time=0.0, cpu_work=100.0)
        service.accept(request, 0.0)
        node.step(1.0, 1.0)
        # Equal shares: the microservice gets half of the 4 cores.
        assert request.cpu_done == pytest.approx(2.0)

    def test_share_ratio_respected(self, node, overheads):
        """Paper example: microservice 1024 shares vs stress 5120 => 1/6."""
        service = make_container("svc", cpu=1.0, overheads=overheads)
        stress = CpuStressContainer("stress", cpu_request=5.0, overheads=overheads)
        node.add_container(service, enforce_capacity=False)
        node.add_container(stress, enforce_capacity=False)
        request = Request(service="svc", arrival_time=0.0, cpu_work=100.0)
        service.accept(request, 0.0)
        node.step(1.0, 1.0)
        assert request.cpu_done == pytest.approx(4.0 / 6.0, rel=0.01)


class TestNetStress:
    def test_constant_offered_load(self, overheads):
        stress = NetStressContainer("net", net_rate=100.0, offered_mbps=500.0, overheads=overheads)
        assert stress.net_demand(1.0) == 500.0
        assert stress.net_demand(0.25) == 500.0

    def test_tracks_granted_throughput(self, overheads):
        stress = NetStressContainer("net", net_rate=100.0, offered_mbps=500.0, overheads=overheads)
        stress.advance_network(80.0, 1.0)
        assert stress.net_usage == 80.0

    def test_hogs_free_bandwidth_on_node(self, node, overheads):
        stress = NetStressContainer("net", net_rate=900.0, offered_mbps=2000.0, overheads=overheads)
        node.add_container(stress, enforce_capacity=False)
        node.step(1.0, 1.0)
        assert stress.net_usage > 800.0

    def test_stopped_stress_demands_nothing(self, overheads):
        stress = NetStressContainer("net", net_rate=100.0, offered_mbps=500.0, overheads=overheads)
        stress.terminate(1.0)
        assert stress.net_demand(1.0) == 0.0
        cpu_stress = CpuStressContainer("s", cpu_request=1.0, overheads=overheads)
        cpu_stress.terminate(1.0)
        assert cpu_stress.cpu_demand(4.0) == 0.0
