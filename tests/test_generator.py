"""Tests for the open-loop client load generator."""

import pytest

from repro.errors import WorkloadError
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.workloads.generator import ClientLoadGenerator, ServiceLoad
from repro.workloads.patterns import ConstantLoad
from repro.workloads.profiles import CPU_BOUND


def run_generator(loads, seed=0, steps=100, dt=0.5):
    sink = []
    generator = ClientLoadGenerator(loads, RngStreams(seed), sink.append)
    clock = SimClock(dt=dt)
    for _ in range(steps):
        clock.advance()
        generator.on_step(clock)
    return generator, sink


class TestGeneration:
    def test_poisson_mean_matches_rate(self):
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(10.0))]
        generator, sink = run_generator(loads, steps=400, dt=0.5)
        # 400 steps x 0.5 s x 10 req/s = 2000 expected.
        assert len(sink) == pytest.approx(2000, rel=0.1)
        assert generator.total_generated == len(sink)

    def test_zero_rate_generates_nothing(self):
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(0.0))]
        _, sink = run_generator(loads)
        assert sink == []

    def test_requests_carry_service_and_profile(self):
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(20.0))]
        _, sink = run_generator(loads, steps=10)
        assert sink
        assert all(r.service == "svc" for r in sink)
        assert all(r.cpu_work > 0 for r in sink)

    def test_per_service_counters(self):
        loads = [
            ServiceLoad("a", CPU_BOUND, ConstantLoad(5.0)),
            ServiceLoad("b", CPU_BOUND, ConstantLoad(5.0)),
        ]
        generator, sink = run_generator(loads, steps=100)
        assert generator.generated_by_service["a"] + generator.generated_by_service["b"] == len(sink)

    def test_arrivals_stamped_at_step_start(self):
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(50.0))]
        sink = []
        generator = ClientLoadGenerator(loads, RngStreams(0), sink.append)
        clock = SimClock(dt=1.0)
        clock.advance()  # now = 1.0; interval (0, 1]
        generator.on_step(clock)
        assert all(r.arrival_time == 0.0 for r in sink)


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(10.0))]
        _, a = run_generator(loads, seed=5)
        _, b = run_generator(loads, seed=5)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert [r.cpu_work for r in a] == [r.cpu_work for r in b]

    def test_adding_service_preserves_existing_stream(self):
        solo = [ServiceLoad("a", CPU_BOUND, ConstantLoad(10.0))]
        duo = solo + [ServiceLoad("b", CPU_BOUND, ConstantLoad(10.0))]
        _, lone = run_generator(solo, seed=5)
        _, mixed = run_generator(duo, seed=5)
        a_lone = [(r.arrival_time, r.cpu_work) for r in lone]
        a_mixed = [(r.arrival_time, r.cpu_work) for r in mixed if r.service == "a"]
        assert a_lone == a_mixed


class TestValidation:
    def test_duplicate_service_rejected(self):
        loads = [
            ServiceLoad("a", CPU_BOUND, ConstantLoad(1.0)),
            ServiceLoad("a", CPU_BOUND, ConstantLoad(2.0)),
        ]
        with pytest.raises(WorkloadError):
            ClientLoadGenerator(loads, RngStreams(0), lambda r: None)

    def test_empty_service_name_rejected(self):
        with pytest.raises(WorkloadError):
            ServiceLoad("", CPU_BOUND, ConstantLoad(1.0))
