"""Property-based tests on the substrate physics: conservation laws.

Whatever the schedulers decide, the simulator must never mint resources:
compute progress is bounded by the grant, transmitted bits by the NIC,
measured node usage by node capacity.  Hypothesis drives randomized
workloads through single containers and whole nodes and checks the books.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.config import OverheadModel
from repro.workloads.requests import Request

QUIET = OverheadModel(
    colocation_contention=0.0,
    colocation_cap=1.0,
    distribution_log_coeff=0.0,
    container_background_cpu=0.0,
    container_boot_delay=0.0,
    net_cpu_per_mbit=0.0,
)

request_batches = st.lists(
    st.tuples(
        st.floats(0.0, 5.0, allow_nan=False),  # cpu_work
        st.floats(0.0, 20.0, allow_nan=False),  # net_mbits
        st.floats(0.0, 10.0, allow_nan=False),  # disk_mb
    ),
    min_size=1,
    max_size=25,
)


def container_with(batch, concurrency=8):
    container = Container(
        "svc", 0, cpu_request=1.0, mem_limit=4096.0, net_rate=100.0,
        max_concurrency=concurrency, overheads=QUIET,
    )
    requests = []
    for cpu, net, disk in batch:
        request = Request(
            service="svc", arrival_time=0.0, cpu_work=cpu, mem_footprint=1.0,
            net_mbits=net, disk_mb=disk, timeout=1e6,
        )
        container.accept(request, 0.0)
        requests.append(request)
    return container, requests


class TestComputeConservation:
    @given(batch=request_batches, granted=st.floats(0.0, 8.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_progress_bounded_by_grant(self, batch, granted):
        container, requests = container_with(batch)
        before = sum(r.cpu_done for r in requests)
        container.advance_compute(granted, dt=1.0, contention_factor=1.0)
        after = sum(r.cpu_done for r in requests)
        assert after - before <= granted * 1.0 + 1e-6

    @given(batch=request_batches, granted=st.floats(0.5, 8.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_work_conserving_until_done(self, batch, granted):
        """Either the whole grant is consumed or every compute phase ends."""
        container, requests = container_with(batch)
        demand = sum(r.cpu_remaining for r in requests)
        before = sum(r.cpu_done for r in requests)
        container.advance_compute(granted, dt=1.0, contention_factor=1.0)
        consumed = sum(r.cpu_done for r in requests) - before
        if demand >= granted:
            assert consumed == pytest.approx(granted, rel=1e-6, abs=1e-6)
        else:
            assert consumed == pytest.approx(demand, rel=1e-6, abs=1e-6)

    @given(batch=request_batches)
    @settings(max_examples=40, deadline=None)
    def test_usage_never_exceeds_grant(self, batch):
        container, _ = container_with(batch)
        container.advance_compute(2.5, dt=0.5, contention_factor=1.0)
        assert container.cpu_usage <= 2.5 + 1e-6


class TestNetworkConservation:
    @given(batch=request_batches, granted=st.floats(0.0, 200.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_transmitted_bounded_by_grant(self, batch, granted):
        container, requests = container_with(batch)
        for request in requests:
            request.advance_cpu(request.cpu_remaining)  # skip to net phase
            request.advance_disk(request.disk_remaining)
        before = sum(r.net_done for r in requests)
        container.advance_network(granted, dt=1.0)
        sent = sum(r.net_done for r in requests) - before
        assert sent <= granted * 1.0 + 1e-6
        assert container.net_usage == pytest.approx(sent, rel=1e-6, abs=1e-6)


class TestDiskConservation:
    @given(batch=request_batches, granted=st.floats(0.0, 300.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_served_bounded_by_grant(self, batch, granted):
        container, requests = container_with(batch)
        for request in requests:
            request.advance_cpu(request.cpu_remaining)
        before = sum(r.disk_done for r in requests)
        container.advance_disk(granted, dt=1.0)
        served = sum(r.disk_done for r in requests) - before
        assert served <= granted + 1e-6


class TestNodeConservation:
    @given(
        allocations=st.lists(st.floats(0.2, 1.5, allow_nan=False), min_size=1, max_size=5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_node_usage_within_capacity(self, allocations, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        node = Node("n0", ResourceVector(4.0, 8192.0, 1000.0), QUIET)
        containers = []
        for i, cpu in enumerate(allocations):
            container = Container(
                f"svc{i}", 0, cpu_request=cpu, mem_limit=512.0, net_rate=50.0,
                overheads=QUIET,
            )
            node.add_container(container, enforce_capacity=False)
            containers.append(container)
            for _ in range(int(rng.integers(0, 6))):
                container.accept(
                    Request(service=f"svc{i}", arrival_time=0.0,
                            cpu_work=float(rng.uniform(0.1, 3.0)),
                            net_mbits=float(rng.uniform(0.0, 30.0)),
                            timeout=1e6),
                    0.0,
                )
        for step in range(1, 4):
            node.step(float(step), 1.0)
            usage = node.usage()
            assert usage.cpu <= node.capacity.cpu + 1e-6
            assert usage.network <= node.capacity.network + 1e-6

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_all_work_eventually_completes(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        node = Node("n0", ResourceVector(4.0, 8192.0, 1000.0), QUIET)
        container = Container("svc", 0, cpu_request=1.0, mem_limit=4096.0,
                              net_rate=100.0, overheads=QUIET)
        node.add_container(container)
        requests = [
            Request(service="svc", arrival_time=0.0,
                    cpu_work=float(rng.uniform(0.0, 1.0)),
                    net_mbits=float(rng.uniform(0.0, 5.0)),
                    disk_mb=float(rng.uniform(0.0, 5.0)),
                    timeout=1e6)
            for _ in range(int(rng.integers(1, 12)))
        ]
        for request in requests:
            container.accept(request, 0.0)
        for step in range(1, 200):
            node.step(float(step), 1.0)
            if all(r.is_finished for r in requests):
                break
        assert all(r.is_finished for r in requests)
