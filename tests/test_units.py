"""Tests for unit conversions."""

import pytest

from repro import units


class TestShares:
    def test_one_core_is_1024_shares(self):
        assert units.cores_to_shares(1.0) == 1024

    def test_round_trip(self):
        for cores in (0.25, 0.5, 1.0, 2.0, 3.75):
            assert units.shares_to_cores(units.cores_to_shares(cores)) == pytest.approx(
                cores, abs=1e-3
            )

    def test_zero_cores_zero_shares(self):
        assert units.cores_to_shares(0.0) == 0

    def test_docker_minimum_two_shares(self):
        # Docker clamps cpu-shares to a minimum of 2 for any non-zero value.
        assert units.cores_to_shares(0.0001) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.cores_to_shares(-1.0)
        with pytest.raises(ValueError):
            units.shares_to_cores(-1)


class TestBytesAndBits:
    def test_mib_round_trip(self):
        assert units.bytes_to_mib(units.mib_to_bytes(3.5)) == pytest.approx(3.5)

    def test_mib_is_binary(self):
        assert units.mib_to_bytes(1.0) == 1024 * 1024

    def test_mbit_is_decimal(self):
        assert units.mbit_to_bits(1.0) == 1_000_000

    def test_megabytes_to_megabits(self):
        assert units.mbytes_to_mbits(1.0) == 8.0
        assert units.mbits_to_mbytes(8.0) == 1.0


class TestPercent:
    def test_percent_round_trip(self):
        assert units.fraction(units.percent(0.37)) == pytest.approx(0.37)

    def test_percent_of_half(self):
        assert units.percent(0.5) == 50.0
