"""Tests for the NIC model: shaping + tx-queue contention."""

import pytest

from repro.config import OverheadModel
from repro.errors import NetworkSimError
from repro.netsim.interface import NetworkInterface


@pytest.fixture
def nic(overheads):
    """A 1 Gbit/s NIC with contention switched off (pure shaping tests)."""
    return NetworkInterface(1000.0, overheads)


@pytest.fixture
def paper_nic():
    """A NIC with the calibrated contention model."""
    return NetworkInterface(1000.0, OverheadModel())


class TestAttachment:
    def test_attach_transmit_detach(self, nic):
        nic.attach("c1", rate=100.0)
        out = nic.transmit({"c1": 50.0})
        assert out["c1"] == pytest.approx(50.0)
        nic.detach("c1")
        assert not nic.is_attached("c1")

    def test_reshape(self, nic):
        nic.attach("c1", rate=100.0, ceil=100.0)
        nic.reshape("c1", rate=10.0, ceil=10.0)
        out = nic.transmit({"c1": 50.0})
        assert out["c1"] == pytest.approx(10.0)

    def test_transmit_unknown_container_rejected(self, nic):
        with pytest.raises(NetworkSimError):
            nic.transmit({"ghost": 1.0})

    def test_negative_offered_rejected(self, nic):
        nic.attach("c1", rate=10.0)
        with pytest.raises(NetworkSimError):
            nic.transmit({"c1": -1.0})

    def test_capacity_validation(self):
        with pytest.raises(NetworkSimError):
            NetworkInterface(0.0)


class TestSharing:
    def test_guarantees_respected_under_contention(self, nic):
        nic.attach("a", rate=800.0)
        nic.attach("b", rate=200.0)
        out = nic.transmit({"a": 2000.0, "b": 2000.0})
        assert out["a"] == pytest.approx(800.0)
        assert out["b"] == pytest.approx(200.0)

    def test_borrowing_when_neighbour_idle(self, nic):
        nic.attach("a", rate=100.0)
        nic.attach("b", rate=100.0)
        out = nic.transmit({"a": 2000.0, "b": 0.0})
        assert out["a"] == pytest.approx(1000.0)

    def test_total_never_exceeds_capacity(self, nic):
        for i in range(5):
            nic.attach(f"c{i}", rate=300.0)
        out = nic.transmit({f"c{i}": 1000.0 for i in range(5)})
        assert sum(out.values()) <= 1000.0 + 1e-6


class TestContention:
    def test_fat_saturated_class_penalized(self, paper_nic):
        paper_nic.attach("fat", rate=100.0, ceil=100.0)
        out = paper_nic.transmit({"fat": 1000.0})
        # Saturated 100 Mbit/s class loses a substantial fraction.
        assert out["fat"] < 100.0 * 0.75

    def test_thin_classes_barely_penalized(self, paper_nic):
        for i in range(8):
            paper_nic.attach(f"thin{i}", rate=12.5, ceil=12.5)
        out = paper_nic.transmit({f"thin{i}": 1000.0 for i in range(8)})
        total = sum(out.values())
        assert total > 100.0 * 0.80  # eight thin queues ~= full goodput

    def test_unsaturated_class_barely_penalized(self, paper_nic):
        paper_nic.attach("calm", rate=100.0, ceil=100.0)
        out = paper_nic.transmit({"calm": 30.0})
        assert out["calm"] > 29.0  # u^3 makes low-utilization penalty tiny

    def test_figure3_monotone_gain(self):
        """The Figure 3 mechanism: same total bandwidth, thinner classes on
        more NICs => strictly more goodput."""
        goodput = []
        for replicas in (1, 2, 4, 8):
            rate = 100.0 / replicas
            per_nic = []
            for _ in range(replicas):
                nic = NetworkInterface(1000.0, OverheadModel())
                nic.attach("svc", rate=rate, ceil=rate)
                per_nic.append(nic.transmit({"svc": 1000.0})["svc"])
            goodput.append(sum(per_nic))
        assert goodput == sorted(goodput)
        assert goodput[-1] > goodput[0]

    def test_oversubscription_penalty(self):
        overheads = OverheadModel(txq_penalty_max=0.0, txq_oversub_penalty=0.5)
        nic = NetworkInterface(100.0, overheads)
        nic.attach("a", rate=50.0)
        nic.attach("b", rate=50.0)
        calm = nic.transmit({"a": 40.0, "b": 0.0})["a"]
        hot = sum(nic.transmit({"a": 100.0, "b": 100.0}).values())
        assert hot < 100.0  # admitted 200 over a 100 link => queueing loss
        assert calm == pytest.approx(40.0)

    def test_penalty_capped(self, paper_nic):
        paper_nic.attach("x", rate=1000.0)
        assert paper_nic.class_penalty(10_000.0, 1000.0, 100.0) <= 0.95
