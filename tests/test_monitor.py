"""Tests for the MONITOR: view building, ticks, action execution."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.config import ClusterConfig, SimulationConfig
from repro.core.actions import AddReplica, RemoveReplica, ScalingAction, VerticalScale
from repro.core.policy import AutoscalingPolicy
from repro.core.view import ClusterView
from repro.dockersim.api import DockerClient
from repro.metrics.collector import MetricsCollector
from repro.platform.monitor import Monitor
from repro.platform.node_manager import NodeManager
from repro.sim.clock import SimClock


class ScriptedPolicy(AutoscalingPolicy):
    """Returns a queued list of action batches, one batch per tick."""

    name = "scripted"

    def __init__(self, batches=None):
        self.batches = list(batches or [])
        self.views: list[ClusterView] = []

    def decide(self, view: ClusterView) -> list[ScalingAction]:
        self.views.append(view)
        return self.batches.pop(0) if self.batches else []


def build_platform(overheads, policy=None, worker_nodes=2):
    config = SimulationConfig(
        cluster=ClusterConfig(worker_nodes=worker_nodes),
        seed=0,
        monitor_period=5.0,
    )
    cluster = Cluster.from_config(config.cluster, overheads)
    client = DockerClient(cluster)
    cluster.register_service(MicroserviceSpec(name="svc"))
    managers = {name: NodeManager(d) for name, d in client.daemons.items()}
    collector = MetricsCollector()
    monitor = Monitor(cluster, client, managers, policy or ScriptedPolicy(), config, collector)
    return config, cluster, client, managers, collector, monitor


def run_steps(cluster, managers, monitor, clock, steps):
    for _ in range(steps):
        clock.advance()
        cluster.on_step(clock)
        for name in sorted(managers):
            managers[name].on_step(clock)
        monitor.on_step(clock)


class TestTickCadence:
    def test_ticks_on_period(self, overheads):
        _, cluster, _, managers, _, monitor = build_platform(overheads)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 12)
        assert monitor.log.ticks == 2  # at t=5 and t=10

    def test_policy_sees_snapshot(self, overheads):
        policy = ScriptedPolicy()
        _, cluster, client, managers, _, monitor = build_platform(overheads, policy)
        client.run_replica("svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        view = policy.views[0]
        assert view.service("svc").replica_count == 1
        assert view.node("node-00").allocated.cpu == pytest.approx(0.5)


class TestViewBuilding:
    def test_booting_replicas_flagged(self, overheads):
        _, cluster, client, managers, _, monitor = build_platform(overheads)
        cluster.overheads = overheads
        client.run_replica(
            "svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0, boot_delay=100.0
        )
        view = monitor.build_view(1.0)
        replica = view.service("svc").replicas[0]
        assert replica.booting
        assert replica.cpu_request == 0.5

    def test_usage_comes_from_window_mean(self, overheads):
        _, cluster, client, managers, _, monitor = build_platform(overheads)
        container = client.run_replica(
            "svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        from repro.workloads.requests import Request

        container.accept(Request(service="svc", arrival_time=0.0, cpu_work=1000.0), 0.0)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        view = monitor.build_view(5.0)
        assert view.service("svc").replicas[0].cpu_usage > 0.0


class TestActionExecution:
    def test_add_replica_with_pinned_node(self, overheads):
        policy = ScriptedPolicy(
            [[AddReplica("svc", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, node="node-01")]]
        )
        _, cluster, _, managers, collector, monitor = build_platform(overheads, policy)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert cluster.node("node-01").hosts_service("svc")
        assert collector.horizontal_scale_ups == 1

    def test_add_replica_placement_when_unpinned(self, overheads):
        policy = ScriptedPolicy(
            [[AddReplica("svc", cpu_request=0.5, mem_limit=512.0, net_rate=50.0)]]
        )
        _, cluster, _, managers, _, monitor = build_platform(overheads, policy)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert cluster.service("svc").replica_count == 1

    def test_pinned_node_full_falls_back_to_placement(self, overheads):
        policy = ScriptedPolicy(
            [[AddReplica("svc", cpu_request=3.0, mem_limit=512.0, net_rate=50.0, node="node-00")]]
        )
        _, cluster, client, managers, _, monitor = build_platform(overheads, policy)
        # Fill node-00 so the pin cannot be honoured.
        client.run_replica("svc", "node-00", cpu_request=3.0, mem_limit=512.0, net_rate=50.0, now=0.0)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert cluster.node("node-01").hosts_service("svc")

    def test_remove_replica(self, overheads):
        _, cluster, client, managers, collector, monitor = build_platform(overheads)
        container = client.run_replica(
            "svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        monitor.policy.batches = [[RemoveReplica(container.container_id)]]
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert cluster.service("svc").replica_count == 0
        assert collector.horizontal_scale_downs == 1

    def test_vertical_clamped_to_headroom(self, overheads):
        _, cluster, client, managers, collector, monitor = build_platform(overheads)
        container = client.run_replica(
            "svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        monitor.policy.batches = [[VerticalScale(container.container_id, cpu_request=99.0)]]
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert container.cpu_request == pytest.approx(4.0)  # node capacity
        assert collector.vertical_scale_ops == 1

    def test_failed_action_counted_not_raised(self, overheads):
        policy = ScriptedPolicy([[RemoveReplica("ghost-container")]])
        _, cluster, _, managers, _, monitor = build_platform(overheads, policy)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert monitor.log.actions_failed == 1
        assert monitor.log.failures

    def test_placement_failure_counted(self, overheads):
        policy = ScriptedPolicy(
            [[AddReplica("svc", cpu_request=100.0, mem_limit=512.0, net_rate=50.0)]]
        )
        _, cluster, _, managers, _, monitor = build_platform(overheads, policy)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert monitor.log.placement_failures == 1


class TestReaping:
    def test_oom_reaped_every_step(self, overheads):
        _, cluster, client, managers, collector, monitor = build_platform(overheads)
        container = client.run_replica(
            "svc", "node-00", cpu_request=0.5, mem_limit=110.0, net_rate=50.0, now=0.0
        )
        from repro.workloads.requests import Request

        for _ in range(8):
            container.accept(
                Request(service="svc", arrival_time=0.0, cpu_work=1000.0, mem_footprint=200.0), 0.0
            )
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 2)
        assert collector.oom_kills == 1
        assert cluster.service("svc").replica_count == 0


class TestPolicySwap:
    def test_set_policy_takes_effect_next_tick(self, overheads):
        """Section V-C: algorithms are switchable on a live cluster."""
        from repro.core.hyscale import HyScaleCpu

        first = ScriptedPolicy()
        _, cluster, client, managers, collector, monitor = build_platform(overheads, first)
        client.run_replica("svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0)
        clock = SimClock(dt=1.0)
        run_steps(cluster, managers, monitor, clock, 5)
        assert len(first.views) == 1

        replacement = HyScaleCpu()
        monitor.set_policy(replacement)
        run_steps(cluster, managers, monitor, clock, 5)
        assert len(first.views) == 1  # old policy no longer consulted
        assert monitor.policy is replacement
        assert monitor.log.ticks == 2
