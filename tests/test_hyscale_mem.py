"""Tests for HYSCALE_CPU+Mem (Section IV-B2)."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.core.actions import AddReplica, RemoveReplica, VerticalScale
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.errors import PolicyError

from tests.conftest import make_node_view, make_replica, make_service, make_view


def policy(**kwargs) -> HyScaleCpuMem:
    return HyScaleCpuMem(**kwargs)


class TestMemoryEquations:
    def test_missing_mem(self):
        service = make_service(
            "svc", (make_replica("a", mem_limit=1024.0, mem_usage=768.0),), target=0.5
        )
        # (768 - 1024*0.5) / 0.5 = 512 MiB missing.
        assert policy().missing_mem(service) == pytest.approx(512.0)

    def test_reclaimable_mem(self):
        replica = make_replica("a", mem_limit=1024.0, mem_usage=225.0)
        # 1024 - 225/0.45 = 524.
        assert policy().reclaimable_mem(replica, target=0.5) == pytest.approx(524.0)

    def test_required_mem(self):
        replica = make_replica("a", mem_limit=512.0, mem_usage=450.0)
        # 450/0.45 - 512 = 488.
        assert policy().required_mem(replica, target=0.5) == pytest.approx(488.0)

    def test_parameter_validation(self):
        with pytest.raises(PolicyError):
            HyScaleCpuMem(min_mem_removal=0.0)
        with pytest.raises(PolicyError):
            HyScaleCpuMem(min_mem_removal=200.0, mem_floor=100.0)


class TestMemoryAcquisition:
    def test_vertical_memory_growth(self):
        """A memory-starved service gets a bigger limit, not new replicas."""
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_request=0.5, cpu_usage=0.25,
                                  mem_limit=512.0, mem_usage=450.0),),
                ),
            )
        )
        actions = policy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert len(verticals) == 1
        assert verticals[0].mem_limit == pytest.approx(512.0 + 488.0)
        assert verticals[0].cpu_request is None  # CPU was on target

    def test_both_axes_in_one_action(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_request=0.5, cpu_usage=0.9,
                                  mem_limit=512.0, mem_usage=450.0),),
                ),
            )
        )
        verticals = [a for a in policy().decide(view) if isinstance(a, VerticalScale)]
        assert len(verticals) == 1
        assert verticals[0].cpu_request is not None and verticals[0].mem_limit is not None

    def test_memory_acquisition_capped_by_node(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", mem_limit=512.0, mem_usage=500.0, cpu_request=0.5,
                                  cpu_usage=0.25),),
                ),
            ),
            nodes=(
                make_node_view(
                    "n0",
                    allocated=ResourceVector(0.5, 8092.0, 50.0),  # only 100 MiB free
                    services=("svc",),
                ),
            ),
        )
        verticals = [a for a in policy().decide(view) if isinstance(a, VerticalScale)]
        assert verticals[0].mem_limit == pytest.approx(612.0)


class TestMutualRemoval:
    def idle_replicas_view(self, mem_usage_b: float, now=100.0):
        return make_view(
            services=(
                make_service(
                    "svc",
                    (
                        make_replica("a", cpu_request=0.5, cpu_usage=0.2,
                                     mem_limit=512.0, mem_usage=100.0),
                        make_replica("b", cpu_request=0.5, cpu_usage=0.001,
                                     mem_limit=512.0, mem_usage=mem_usage_b),
                    ),
                    min_replicas=1,
                ),
            ),
            now=now,
        )

    def test_removed_when_both_axes_idle(self):
        view = self.idle_replicas_view(mem_usage_b=1.0)
        removals = [a for a in policy().decide(view) if isinstance(a, RemoveReplica)]
        assert [r.container_id for r in removals] == ["b"]

    def test_kept_when_memory_still_used(self):
        """'The algorithm can no longer indiscriminately remove a container
        that is consuming memory ... if it falls below a certain CPU
        threshold' — the thresholds must be met mutually."""
        view = self.idle_replicas_view(mem_usage_b=300.0)  # CPU idle, memory busy
        actions = policy().decide(view)
        assert not any(isinstance(a, RemoveReplica) for a in actions)

    def test_kept_replica_clamped_at_floors(self):
        view = self.idle_replicas_view(mem_usage_b=300.0)
        verticals = {a.container_id: a for a in policy().decide(view) if isinstance(a, VerticalScale)}
        b = verticals["b"]
        assert b.cpu_request == pytest.approx(0.1)  # CPU floor
        assert b.mem_limit is None or b.mem_limit >= 0.75 * 512.0


class TestMemorySpill:
    def test_spill_when_node_memory_exhausted(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", node="n0", mem_limit=7000.0, mem_usage=6800.0,
                                  cpu_request=0.5, cpu_usage=0.25),),
                ),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(0.5, 8192.0, 50.0), services=("svc",)),
                make_node_view("n1"),
            ),
            now=100.0,
        )
        adds = [a for a in policy().decide(view) if isinstance(a, AddReplica)]
        assert len(adds) == 1
        assert adds[0].node == "n1"
        assert adds[0].mem_limit >= 512.0

    def test_spawn_requires_both_thresholds(self):
        """New containers 'cannot be added with no allocated memory or CPU':
        a node with memory but no CPU is not a candidate."""
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", node="n0", mem_limit=7000.0, mem_usage=6800.0,
                                  cpu_request=0.5, cpu_usage=0.25),),
                ),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(0.5, 8192.0, 50.0), services=("svc",)),
                make_node_view("n1", allocated=ResourceVector(3.9, 0.0, 0.0)),  # 0.1 CPU free
            ),
            now=100.0,
        )
        assert not any(isinstance(a, AddReplica) for a in policy().decide(view))


class TestInheritedCpuBehaviour:
    def test_cpu_equations_still_apply(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", cpu_request=0.5, cpu_usage=0.9,
                                                  mem_limit=512.0, mem_usage=100.0),)),
            )
        )
        verticals = [a for a in policy().decide(view) if isinstance(a, VerticalScale)]
        ups = [v for v in verticals if v.cpu_request is not None and v.cpu_request > 0.5]
        assert ups and ups[0].cpu_request == pytest.approx(2.0)

    def test_name(self):
        assert policy().name == "hybridmem"
