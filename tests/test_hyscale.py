"""Tests for HYSCALE_CPU (Section IV-B1)."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.core.actions import AddReplica, RemoveReplica, VerticalScale
from repro.core.hyscale import HyScaleCpu
from repro.errors import PolicyError

from tests.conftest import make_node_view, make_replica, make_service, make_view


def policy(**kwargs) -> HyScaleCpu:
    return HyScaleCpu(**kwargs)


class TestEquations:
    def test_missing_cpus_zero_at_target(self):
        """usage == requested * target  =>  Missing = 0."""
        service = make_service(
            "svc", (make_replica("a", cpu_request=1.0, cpu_usage=0.5),), target=0.5
        )
        assert policy().missing_cpus(service) == pytest.approx(0.0)

    def test_missing_cpus_positive_when_starved(self):
        service = make_service(
            "svc", (make_replica("a", cpu_request=1.0, cpu_usage=1.0),), target=0.5
        )
        # (1.0 - 1.0*0.5) / 0.5 = 1.0 missing CPU.
        assert policy().missing_cpus(service) == pytest.approx(1.0)

    def test_missing_cpus_negative_when_slack(self):
        service = make_service(
            "svc", (make_replica("a", cpu_request=2.0, cpu_usage=0.5),), target=0.5
        )
        # (0.5 - 2.0*0.5) / 0.5 = -1.0.
        assert policy().missing_cpus(service) == pytest.approx(-1.0)

    def test_reclaimable_formula(self):
        """Reclaimable_r = requested_r - usage_r / (0.9 * Target)."""
        replica = make_replica("a", cpu_request=2.0, cpu_usage=0.45)
        assert policy().reclaimable_cpus(replica, target=0.5) == pytest.approx(2.0 - 1.0)

    def test_required_formula(self):
        """Required_r = usage_r / (0.9 * Target) - requested_r."""
        replica = make_replica("a", cpu_request=0.5, cpu_usage=0.9)
        assert policy().required_cpus(replica, target=0.5) == pytest.approx(2.0 - 0.5)

    def test_parameter_validation(self):
        with pytest.raises(PolicyError):
            HyScaleCpu(min_cpu_removal=0.0)
        with pytest.raises(PolicyError):
            HyScaleCpu(min_cpu_removal=0.5, min_cpu_spawn=0.2)
        with pytest.raises(PolicyError):
            HyScaleCpu(headroom=0.0)


class TestReclamation:
    def test_vertical_scale_down(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", cpu_request=2.0, cpu_usage=0.45),)),
            )
        )
        actions = policy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert len(verticals) == 1
        assert verticals[0].cpu_request == pytest.approx(1.0)
        assert verticals[0].reason == "reclaim"

    def test_removal_below_threshold(self):
        """A replica whose post-reclaim allocation would drop under 0.1 CPU
        is removed entirely (when min replicas allow)."""
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (
                        make_replica("a", cpu_request=0.5, cpu_usage=0.2),
                        make_replica("b", cpu_request=0.5, cpu_usage=0.001),
                    ),
                    min_replicas=1,
                ),
            ),
            now=100.0,
        )
        actions = policy().decide(view)
        removals = [a for a in actions if isinstance(a, RemoveReplica)]
        assert [r.container_id for r in removals] == ["b"]

    def test_min_replicas_prevent_removal(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_request=0.5, cpu_usage=0.001),),
                    min_replicas=1,
                ),
            )
        )
        actions = policy().decide(view)
        assert not any(isinstance(a, RemoveReplica) for a in actions)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        # Clamped shrink to the 0.1 CPU floor instead.
        assert verticals and verticals[0].cpu_request == pytest.approx(0.1)

    def test_removal_respects_down_interval(self):
        p = policy(scale_down_interval=50.0)
        def idle_view(now):
            return make_view(
                services=(
                    make_service(
                        "svc",
                        (
                            make_replica("a", cpu_request=0.5, cpu_usage=0.6),
                            make_replica("b", cpu_request=0.5, cpu_usage=0.001),
                            make_replica("c", cpu_request=0.5, cpu_usage=0.001),
                        ),
                    ),
                ),
                now=now,
            )
        first = [a for a in p.decide(idle_view(100.0)) if isinstance(a, RemoveReplica)]
        assert len(first) == 1  # one removal, then the guard engages
        second = [a for a in p.decide(idle_view(102.0)) if isinstance(a, RemoveReplica)]
        assert second == []


class TestAcquisition:
    def test_vertical_scale_up_within_node(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", cpu_request=0.5, cpu_usage=0.9),)),
            )
        )
        actions = policy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert len(verticals) == 1
        # Required = 0.9/0.45 - 0.5 = 1.5; node has room.
        assert verticals[0].cpu_request == pytest.approx(2.0)
        assert verticals[0].reason == "acquire"

    def test_acquisition_capped_by_node_availability(self):
        """Acquired_r = min(Required_r, Available_n)."""
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", cpu_request=3.5, cpu_usage=3.5),)),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(3.5, 512.0, 50.0), services=("svc",)),
            ),
        )
        actions = policy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        assert verticals[0].cpu_request == pytest.approx(4.0)  # 3.5 + the 0.5 left

    def test_horizontal_spill_when_node_full(self):
        """Vertical cannot cover the deficit -> replicate onto a node not
        hosting the service."""
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", node="n0", cpu_request=4.0, cpu_usage=4.0),)),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(4.0, 512.0, 50.0), services=("svc",)),
                make_node_view("n1"),
            ),
            now=100.0,
        )
        actions = policy().decide(view)
        adds = [a for a in actions if isinstance(a, AddReplica)]
        assert len(adds) == 1
        assert adds[0].node == "n1"
        assert adds[0].exclude_hosting
        assert adds[0].cpu_request >= 0.25

    def test_spawn_needs_baseline_memory(self):
        """A node advertising CPU but not the baseline memory is skipped."""
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", node="n0", cpu_request=4.0, cpu_usage=4.0),),
                    base_mem=512.0,
                ),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(4.0, 512.0, 50.0), services=("svc",)),
                make_node_view(
                    "n1", allocated=ResourceVector(0.0, 8000.0, 0.0)
                ),  # only 192 MiB free
            ),
            now=100.0,
        )
        actions = policy().decide(view)
        assert not any(isinstance(a, AddReplica) for a in actions)

    def test_spill_respects_up_interval(self):
        p = policy(scale_up_interval=3.0)
        def starved_view(now):
            return make_view(
                services=(
                    make_service("svc", (make_replica("a", node="n0", cpu_request=4.0, cpu_usage=4.0),)),
                ),
                nodes=(
                    make_node_view("n0", allocated=ResourceVector(4.0, 512.0, 50.0), services=("svc",)),
                    make_node_view("n1"),
                ),
                now=now,
            )
        assert any(isinstance(a, AddReplica) for a in p.decide(starved_view(100.0)))
        assert not any(isinstance(a, AddReplica) for a in p.decide(starved_view(101.0)))

    def test_vertical_exempt_from_intervals(self):
        """'Vertical scaling, however, is exempt from this rule.'"""
        p = policy()
        def hot_view(now):
            return make_view(
                services=(
                    make_service("svc", (make_replica("a", cpu_request=0.5, cpu_usage=0.9),)),
                ),
                now=now,
            )
        assert any(isinstance(a, VerticalScale) for a in p.decide(hot_view(100.0)))
        assert any(isinstance(a, VerticalScale) for a in p.decide(hot_view(100.5)))

    def test_max_replicas_cap_spill(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", node="n0", cpu_request=4.0, cpu_usage=4.0),),
                    max_replicas=1,
                ),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(4.0, 512.0, 50.0), services=("svc",)),
                make_node_view("n1"),
            ),
        )
        assert not any(isinstance(a, AddReplica) for a in policy().decide(view))


class TestBounds:
    def test_min_replicas_restored(self):
        view = make_view(
            services=(make_service("svc", (), min_replicas=2),),
            nodes=(make_node_view("n0"), make_node_view("n1"), make_node_view("n2")),
        )
        adds = [a for a in policy().decide(view) if isinstance(a, AddReplica)]
        assert len(adds) == 2
        # Anti-affinity: the two replicas land on different nodes.
        assert len({a.node for a in adds}) == 2

    def test_max_replicas_enforced(self):
        replicas = tuple(
            make_replica(f"c{i}", node=f"n{i}", cpu_request=0.5, cpu_usage=0.25) for i in range(3)
        )
        view = make_view(services=(make_service("svc", replicas, max_replicas=2),))
        removals = [a for a in policy().decide(view) if isinstance(a, RemoveReplica)]
        assert len(removals) == 1


class TestResourceConservation:
    def test_ledger_prevents_double_spending(self):
        """Two starved services on one node cannot both acquire the same
        spare CPU."""
        view = make_view(
            services=(
                make_service("a", (make_replica("a1", node="n0", cpu_request=1.0, cpu_usage=1.5),)),
                make_service("b", (make_replica("b1", node="n0", cpu_request=1.0, cpu_usage=1.5),)),
            ),
            nodes=(
                make_node_view("n0", allocated=ResourceVector(2.0, 1024.0, 100.0), services=("a", "b")),
            ),
        )
        actions = policy().decide(view)
        verticals = [a for a in actions if isinstance(a, VerticalScale)]
        granted = sum(v.cpu_request - 1.0 for v in verticals)
        assert granted <= 2.0 + 1e-9  # node only had 2 cores free
