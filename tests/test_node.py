"""Tests for the node: hosting, capacity, scheduling, OOM."""

import pytest

from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.errors import CapacityError, ClusterError
from repro.workloads.requests import FailureReason, Request, RequestState

from tests.conftest import make_container


def make_request(cpu=0.5, mem=10.0, net=0.0, timeout=30.0) -> Request:
    return Request(
        service="svc", arrival_time=0.0, cpu_work=cpu, mem_footprint=mem, net_mbits=net, timeout=timeout
    )


class TestHosting:
    def test_add_and_capacity_accounting(self, node, overheads):
        container = make_container(cpu=1.0, mem=1024.0, net=100.0, overheads=overheads)
        node.add_container(container)
        assert node.allocated() == ResourceVector(1.0, 1024.0, 100.0)
        assert node.available() == ResourceVector(3.0, 7168.0, 900.0)

    def test_capacity_enforced(self, node, overheads):
        node.add_container(make_container(cpu=3.0, overheads=overheads))
        with pytest.raises(CapacityError):
            node.add_container(make_container(cpu=2.0, overheads=overheads))

    def test_capacity_enforcement_optional(self, node, overheads):
        node.add_container(make_container(cpu=3.0, overheads=overheads))
        node.add_container(make_container(cpu=3.0, overheads=overheads), enforce_capacity=False)
        assert len(node.containers) == 2

    def test_duplicate_rejected(self, node, overheads):
        container = make_container(overheads=overheads)
        node.add_container(container)
        with pytest.raises(ClusterError):
            node.add_container(container)

    def test_hosts_service(self, node, overheads):
        node.add_container(make_container("frontend", overheads=overheads))
        assert node.hosts_service("frontend")
        assert not node.hosts_service("backend")

    def test_nic_class_attached_and_detached(self, node, overheads):
        container = make_container(overheads=overheads)
        node.add_container(container)
        assert node.nic.is_attached(container.container_id)
        node.remove_container(container.container_id, 1.0)
        assert not node.nic.is_attached(container.container_id)

    def test_remove_unknown_rejected(self, node):
        with pytest.raises(ClusterError):
            node.remove_container("nope", 0.0)

    def test_remove_fails_inflight(self, node, overheads):
        container = make_container(overheads=overheads)
        node.add_container(container)
        request = make_request()
        container.accept(request, 0.0)
        node.remove_container(container.container_id, 1.0)
        assert request.failure_reason is FailureReason.REMOVAL
        assert request in node.drain_finished()

    def test_reshape_network(self, node, overheads):
        container = make_container(net=50.0, overheads=overheads)
        node.add_container(container)
        node.reshape_network(container.container_id, 120.0)
        assert container.net_rate == 120.0
        class_id = node.nic.iptables.class_of(container.container_id)
        assert node.nic.qdisc.get_class(class_id).rate == 120.0

    def test_invalid_node_capacity_rejected(self, overheads):
        with pytest.raises(ClusterError):
            Node("bad", ResourceVector(0.0, 1024.0, 100.0), overheads)


class TestScheduling:
    def test_step_progresses_and_completes(self, node, overheads):
        container = make_container(overheads=overheads)
        node.add_container(container)
        request = make_request(cpu=0.5)
        container.accept(request, 0.0)
        node.step(now=1.0, dt=1.0)
        assert request.state is RequestState.SUCCEEDED
        assert node.drain_finished() == [request]

    def test_shares_divide_contended_cpu(self, node, overheads):
        heavy = make_container("heavy", cpu=2.0, overheads=overheads)
        light = make_container("light", cpu=1.0, overheads=overheads)
        node.add_container(heavy)
        node.add_container(light)
        r_heavy, r_light = make_request(cpu=100.0), make_request(cpu=100.0)
        heavy.accept(r_heavy, 0.0)
        light.accept(r_light, 0.0)
        node.step(1.0, 1.0)
        assert r_heavy.cpu_done == pytest.approx(2.0 * r_light.cpu_done, rel=0.01)

    def test_work_conserving_when_neighbour_idle(self, node, overheads):
        busy = make_container("busy", cpu=0.5, overheads=overheads)
        idle = make_container("idle", cpu=3.0, overheads=overheads)
        node.add_container(busy)
        node.add_container(idle)
        request = make_request(cpu=100.0)
        busy.accept(request, 0.0)
        node.step(1.0, 1.0)
        # Busy container uses the whole node despite its small request.
        assert request.cpu_done == pytest.approx(4.0)

    def test_contention_penalty_applied_when_two_busy(self, overheads):
        from dataclasses import replace

        contended = replace(overheads, colocation_contention=0.5, colocation_cap=2.0)
        node = Node("c", ResourceVector(4.0, 8192.0, 1000.0), contended)
        a = make_container("a", cpu=1.0, overheads=contended)
        b = make_container("b", cpu=1.0, overheads=contended)
        node.add_container(a)
        node.add_container(b)
        ra, rb = make_request(cpu=100.0), make_request(cpu=100.0)
        a.accept(ra, 0.0)
        b.accept(rb, 0.0)
        node.step(1.0, 1.0)
        # Each granted 2 cores, slowed by factor 1.5.
        assert ra.cpu_done == pytest.approx(2.0 / 1.5)

    def test_boot_progresses_during_step(self, node, overheads):
        container = make_container(boot=1.0, overheads=overheads)
        node.add_container(container)
        node.step(1.0, 1.0)
        assert container.is_serving

    def test_network_transmission(self, node, overheads):
        container = make_container(net=100.0, overheads=overheads)
        node.add_container(container)
        request = make_request(cpu=0.0, net=50.0, timeout=100.0)
        container.accept(request, 0.0)
        node.step(1.0, 1.0)
        assert request.net_done == pytest.approx(100.0 * (1.0 - 0.0), rel=0.2) or request.is_finished

    def test_usage_aggregates(self, node, overheads):
        container = make_container(overheads=overheads)
        node.add_container(container)
        container.accept(make_request(cpu=100.0), 0.0)
        node.step(1.0, 1.0)
        assert node.usage().cpu == pytest.approx(4.0)


class TestOom:
    def test_oom_kill_on_step(self, overheads):
        node = Node("oom", ResourceVector(4.0, 8192.0, 1000.0), overheads)
        victim = make_container(mem=110.0, overheads=overheads)
        node.add_container(victim)
        for _ in range(6):
            victim.accept(make_request(cpu=1000.0, mem=200.0), 0.0)
        node.step(1.0, 1.0)
        assert victim in node.last_oom_kills
        assert victim.state.name == "OOM_KILLED"
        finished = node.drain_finished()
        assert finished and all(r.failure_reason is FailureReason.REMOVAL for r in finished)

    def test_no_oom_within_limit(self, node, overheads):
        container = make_container(mem=2048.0, overheads=overheads)
        node.add_container(container)
        container.accept(make_request(mem=100.0), 0.0)
        node.step(1.0, 1.0)
        assert node.last_oom_kills == []
