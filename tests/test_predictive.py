"""Tests for the predictive (forecast-driven) HyScale extension."""

import pytest

from repro.core.actions import VerticalScale
from repro.core.predictive import HoltSmoother, PredictiveHyScale
from repro.errors import PolicyError

from tests.conftest import make_replica, make_service, make_view


class TestHoltSmoother:
    def test_first_observation_is_level(self):
        smoother = HoltSmoother()
        smoother.update(5.0)
        assert smoother.forecast(0) == 5.0
        assert smoother.forecast(10) == 5.0  # no trend yet

    def test_learns_linear_trend(self):
        smoother = HoltSmoother(alpha=0.8, beta=0.8)
        for t in range(20):
            smoother.update(float(t))
        # One step ahead of a unit-slope line: ~next value.
        assert smoother.forecast(1) == pytest.approx(20.0, abs=0.5)
        assert smoother.forecast(5) == pytest.approx(24.0, abs=1.0)

    def test_flat_signal_flat_forecast(self):
        smoother = HoltSmoother()
        for _ in range(10):
            smoother.update(3.0)
        assert smoother.forecast(4) == pytest.approx(3.0, abs=1e-6)

    def test_forecast_never_negative(self):
        smoother = HoltSmoother(alpha=0.9, beta=0.9)
        for value in (10.0, 5.0, 1.0, 0.0):
            smoother.update(value)
        assert smoother.forecast(10) == 0.0

    def test_validation(self):
        with pytest.raises(PolicyError):
            HoltSmoother(alpha=0.0)
        with pytest.raises(PolicyError):
            HoltSmoother(beta=1.5)
        with pytest.raises(PolicyError):
            HoltSmoother().forecast(1)


class TestPredictivePolicy:
    def rising_views(self, usages):
        """One view per tick with the replica's usage following ``usages``."""
        for i, usage in enumerate(usages):
            yield make_view(
                services=(
                    make_service(
                        "svc",
                        (make_replica("a", cpu_request=1.0, cpu_usage=usage,
                                      mem_limit=512.0, mem_usage=150.0),),
                    ),
                ),
                now=100.0 + 5.0 * i,
            )

    def test_provisions_ahead_of_rising_usage(self):
        """On a steady ramp the forecast exceeds the present, so the
        vertical acquisition lands higher than the reactive parent's."""
        from repro.core.hyscale_mem import HyScaleCpuMem

        predictive = PredictiveHyScale(horizon_ticks=2.0, alpha=0.8, beta=0.8)
        reactive = HyScaleCpuMem()
        last_predictive = last_reactive = None
        for view in self.rising_views([0.6, 0.8, 1.0, 1.2, 1.4]):
            predictive_actions = predictive.decide(view)
            reactive_actions = reactive.decide(view)
            for a in predictive_actions:
                if isinstance(a, VerticalScale) and a.cpu_request:
                    last_predictive = a.cpu_request
            for a in reactive_actions:
                if isinstance(a, VerticalScale) and a.cpu_request:
                    last_reactive = a.cpu_request
        assert last_predictive is not None and last_reactive is not None
        assert last_predictive > last_reactive

    def test_zero_horizon_matches_reactive(self):
        """With no lookahead and a settled smoother, decisions converge to
        the reactive parent's on a flat signal."""
        from repro.core.hyscale_mem import HyScaleCpuMem

        predictive = PredictiveHyScale(horizon_ticks=0.0, alpha=1.0, beta=0.0)
        reactive = HyScaleCpuMem()
        views = list(self.rising_views([0.9] * 3))
        for view in views[:-1]:
            predictive.decide(view)
            reactive.decide(view)
        final = views[-1]
        p = [a for a in predictive.decide(final) if isinstance(a, VerticalScale)]
        r = [a for a in reactive.decide(final) if isinstance(a, VerticalScale)]
        assert [(a.cpu_request, a.mem_limit) for a in p] == [
            (a.cpu_request, a.mem_limit) for a in r
        ]

    def test_smoothers_garbage_collected(self):
        policy = PredictiveHyScale()
        for view in self.rising_views([0.5, 0.5]):
            policy.decide(view)
        assert "a" in policy._cpu
        empty = make_view(services=(make_service("svc", ()),), now=200.0)
        policy.decide(empty)
        assert "a" not in policy._cpu

    def test_booting_replicas_passed_through(self):
        view = make_view(
            services=(
                make_service("svc", (make_replica("a", booting=True, cpu_usage=0.0),)),
            )
        )
        policy = PredictiveHyScale()
        policy.decide(view)
        assert "a" not in policy._cpu  # no usage signal folded in

    def test_validation(self):
        with pytest.raises(PolicyError):
            PredictiveHyScale(horizon_ticks=-1.0)

    def test_name(self):
        assert PredictiveHyScale().name == "predictive"
