"""Tests for speedup arithmetic and comparison reports."""

import pytest

from repro.analysis.compare import ComparisonReport, compare_runs
from repro.analysis.speedup import (
    crossover_replicas,
    failure_reduction,
    response_drop_percent,
    response_speedup,
    speedup_matrix,
    taper_point,
)
from repro.errors import ExperimentError
from repro.experiments.section3 import ScalingPoint
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import RunSummary
from repro.workloads.requests import FailureReason, Request


def summary(algorithm: str, rt: float, failed: int = 0, total: int = 100, workload="w") -> RunSummary:
    collector = MetricsCollector()
    for _ in range(total - failed):
        request = Request(service="s", arrival_time=0.0, cpu_work=0.1)
        request.complete(rt)
        collector.record_request(request)
    for _ in range(failed):
        request = Request(service="s", arrival_time=0.0, cpu_work=0.1)
        request.fail(rt, FailureReason.CONNECTION)
        collector.record_request(request)
    return RunSummary.from_collector(collector, algorithm=algorithm, workload=workload, duration=60.0)


class TestSpeedups:
    def test_response_speedup(self):
        assert response_speedup(summary("h", 1.0), summary("k", 1.49)) == pytest.approx(1.49)

    def test_response_drop_percent(self):
        # The paper's 59.22 % drop corresponds to a 2.45x speedup.
        drop = response_drop_percent(summary("n", 1.0), summary("k", 2.4522))
        assert drop == pytest.approx(59.22, abs=0.1)

    def test_failure_reduction(self):
        assert failure_reduction(summary("h", 1.0, failed=1), summary("k", 1.0, failed=10)) == pytest.approx(10.0)

    def test_failure_reduction_infinite_when_perfect(self):
        assert failure_reduction(summary("h", 1.0, failed=0), summary("k", 1.0, failed=5)) == float("inf")

    def test_failure_reduction_one_when_both_perfect(self):
        assert failure_reduction(summary("h", 1.0), summary("k", 1.0)) == 1.0

    def test_speedup_matrix(self):
        runs = {"kubernetes": summary("kubernetes", 2.0), "hybrid": summary("hybrid", 1.0)}
        matrix = speedup_matrix(runs)
        assert matrix["hybrid"] == pytest.approx(2.0)
        assert matrix["kubernetes"] == pytest.approx(1.0)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            speedup_matrix({"hybrid": summary("hybrid", 1.0)})


class TestCurveAnalysis:
    def curve(self, times):
        return [
            ScalingPoint(replicas=n, avg_response_time=t, completed=1, failed=0)
            for n, t in zip((1, 2, 4, 8, 16), times)
        ]

    def test_crossover(self):
        a = self.curve([10, 10, 10, 10, 10])
        b = self.curve([20, 15, 9, 5, 4])
        assert crossover_replicas(a, b) == 4

    def test_no_crossover(self):
        a = self.curve([1, 1, 1, 1, 1])
        b = self.curve([2, 2, 2, 2, 2])
        assert crossover_replicas(a, b) is None

    def test_taper_point(self):
        # Gains: 20 %, 15 %, 6 %, 3 % -> taper (below 10 %) at 8 replicas.
        curve = self.curve([100, 80, 68, 64, 62])
        assert taper_point(curve, threshold=0.10) == 8

    def test_no_taper(self):
        curve = self.curve([100, 50, 25, 12, 6])
        assert taper_point(curve, threshold=0.10) is None


class TestComparisonReport:
    def runs(self):
        return {
            "kubernetes": summary("kubernetes", 2.0, failed=10),
            "hybrid": summary("hybrid", 1.4, failed=1),
            "hybridmem": summary("hybridmem", 1.3, failed=0),
        }

    def test_fastest_and_most_available(self):
        report = compare_runs("w", self.runs())
        assert report.fastest() == "hybridmem"
        assert report.most_available() == "hybridmem"

    def test_speedups_vs_baseline(self):
        report = compare_runs("w", self.runs())
        assert report.speedups()["hybrid"] == pytest.approx(2.0 / 1.4)

    def test_availability_floor(self):
        report = compare_runs("w", self.runs())
        assert report.availability_floor() == pytest.approx(0.90)

    def test_table_renders(self):
        text = compare_runs("w", self.runs()).to_table()
        assert "kubernetes" in text and "avg resp" in text

    def test_mismatched_workloads_rejected(self):
        runs = self.runs()
        runs["other"] = summary("other", 1.0, workload="different")
        with pytest.raises(ExperimentError):
            compare_runs("w", runs)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            ComparisonReport("w", {"hybrid": summary("hybrid", 1.0)})

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            compare_runs("w", {})
