"""Tests for stateful-microservice support (extension).

Section IV-B motivates hybrid scaling with them: "horizontally scaling
microservices that need to preserve state is non-trivial as it introduces
the need for a consistency model to maintain state amongst all replicas.
Hence, in these scenarios, the best scaling decisions are those that bring
forth more resources to a particular container (i.e., vertical scaling)."
"""

import pytest

from repro import HyScaleCpu, KubernetesHpa, Simulation, SimulationConfig, run_experiment
from repro.cluster import MicroserviceSpec
from repro.cluster.microservice import MicroserviceSpec as Spec
from repro.config import ClusterConfig
from repro.errors import ClusterError
from repro.workloads import CPU_BOUND, ConstantLoad, ServiceLoad


def build_sim(stateful: bool, policy=None, rate=8.0, seed=0, state_mb=512.0):
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=seed)
    specs = [
        MicroserviceSpec(
            name="ledger", max_replicas=8, stateful=stateful, state_size_mb=state_mb
        )
    ]
    loads = [ServiceLoad("ledger", CPU_BOUND, ConstantLoad(rate))]
    return Simulation.build(
        config=config, specs=specs, loads=loads, policy=policy or KubernetesHpa()
    )


class TestSpec:
    def test_defaults_stateless(self):
        assert not Spec(name="s").stateful

    def test_negative_state_rejected(self):
        with pytest.raises(ClusterError):
            Spec(name="s", stateful=True, state_size_mb=-1.0)


class TestConsistencyOverhead:
    def test_single_replica_free(self):
        sim = build_sim(stateful=True)
        assert sim.load_balancer.consistency_overhead(1) == pytest.approx(1.0)

    def test_linear_in_extra_replicas(self):
        sim = build_sim(stateful=True)
        o3 = sim.load_balancer.consistency_overhead(3)
        o5 = sim.load_balancer.consistency_overhead(5)
        assert o3 == pytest.approx(1.0 + 2 * 0.08)
        assert (o5 - o3) == pytest.approx(2 * 0.08)

    def test_requests_stamped_with_consistency(self):
        from repro.core import AutoscalingPolicy

        class NoOp(AutoscalingPolicy):
            name = "noop"

            def decide(self, view):
                return []

        sim = build_sim(stateful=True, policy=NoOp(), rate=0.0, state_mb=50.0)
        # Force several replicas, then let them boot and pull state.
        for node in ("node-01", "node-02"):
            sim.client.run_replica(
                "ledger", node, cpu_request=0.5, mem_limit=512.0, net_rate=50.0,
                now=0.0, boot_delay=0.0,
            )
        sim.engine.run_for(5.0)
        from repro.workloads.requests import Request

        request = Request(service="ledger", arrival_time=0.0, cpu_work=0.1, timeout=60.0)
        sim.load_balancer.submit(request)
        expected = sim.load_balancer.distribution_overhead(3) * sim.load_balancer.consistency_overhead(3)
        assert request.overhead_factor == pytest.approx(expected)

    def test_stateless_requests_unaffected(self):
        sim = build_sim(stateful=False)
        from repro.workloads.requests import Request

        request = Request(service="ledger", arrival_time=0.0, cpu_work=0.1)
        sim.load_balancer.submit(request)
        assert request.overhead_factor == pytest.approx(
            sim.load_balancer.distribution_overhead(1)
        )


class TestStateTransfer:
    def test_second_replica_pays_transfer(self):
        sim = build_sim(stateful=True, state_mb=500.0)
        container = sim.client.run_replica(
            "ledger", "node-02", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        # Overhead boot (0 in test fixture's absence — default 2.0) plus
        # 500 MB / 100 MB/s of state pull.
        assert container.boot_remaining >= 5.0

    def test_first_replica_exempt(self):
        config = SimulationConfig(cluster=ClusterConfig(worker_nodes=2), seed=0)
        from repro.cluster.cluster import Cluster
        from repro.dockersim.api import DockerClient

        cluster = Cluster.from_config(config.cluster)
        client = DockerClient(cluster)
        cluster.register_service(Spec(name="ledger", stateful=True, state_size_mb=500.0))
        first = client.run_replica(
            "ledger", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        assert first.boot_remaining <= cluster.overheads.container_boot_delay


class TestVerticalWinsForState:
    def test_hybrid_advantage_grows_with_state(self):
        """The Section IV-B claim, quantified: the hybrid's edge over
        horizontal-only Kubernetes is larger when the service is stateful."""

        def gap(stateful: bool) -> float:
            config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=3)
            specs = [MicroserviceSpec(name="ledger", max_replicas=8, stateful=stateful)]
            loads = [ServiceLoad("ledger", CPU_BOUND, ConstantLoad(14.0))]
            k8s = run_experiment(
                config=config, specs=specs, loads=loads, policy=KubernetesHpa(), duration=120.0
            )
            hybrid = run_experiment(
                config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=120.0
            )
            return k8s.avg_response_time / hybrid.avg_response_time

        assert gap(stateful=True) > gap(stateful=False)
