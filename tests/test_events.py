"""Tests for the scaling-decision event log."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.events import (
    EventKind,
    ScalingEvent,
    ScalingEventLog,
    decision_summary,
    render_event_log,
)


def event(t=1.0, kind=EventKind.VERTICAL, service="svc", reason="reclaim", detail=""):
    return ScalingEvent(time=t, kind=kind, service=service, reason=reason, detail=detail)


class TestLog:
    def test_append_and_read(self):
        log = ScalingEventLog()
        log.record(event(1.0))
        log.record(event(2.0))
        assert len(log) == 2
        assert [e.time for e in log.events()] == [1.0, 2.0]

    def test_time_order_enforced(self):
        log = ScalingEventLog()
        log.record(event(5.0))
        with pytest.raises(ExperimentError):
            log.record(event(1.0))

    def test_same_time_allowed(self):
        log = ScalingEventLog()
        log.record(event(5.0))
        log.record(event(5.0))
        assert len(log) == 2

    def test_for_service(self):
        log = ScalingEventLog()
        log.record(event(1.0, service="a"))
        log.record(event(2.0, service="b"))
        assert [e.service for e in log.for_service("a")] == ["a"]

    def test_between(self):
        log = ScalingEventLog()
        for t in (1.0, 2.0, 3.0):
            log.record(event(t))
        assert [e.time for e in log.between(1.5, 3.0)] == [2.0]
        with pytest.raises(ExperimentError):
            log.between(3.0, 1.0)


class TestSummary:
    def test_counts_by_kind_and_reason(self):
        log = ScalingEventLog()
        log.record(event(1.0, kind=EventKind.VERTICAL, reason="reclaim"))
        log.record(event(2.0, kind=EventKind.VERTICAL, reason="acquire"))
        log.record(event(3.0, kind=EventKind.VERTICAL, reason="acquire"))
        log.record(event(4.0, kind=EventKind.SCALE_UP, reason="spill"))
        summary = decision_summary(log)
        assert summary == {
            "vertical/reclaim": 1,
            "vertical/acquire": 2,
            "scale-up/spill": 1,
        }


class TestRender:
    def test_renders_rows(self):
        log = ScalingEventLog()
        log.record(event(12.5, detail="cpu 0.50->1.25"))
        text = render_event_log(log)
        assert "t=    12.5s" in text
        assert "[reclaim]" in text
        assert "cpu 0.50->1.25" in text

    def test_limit_takes_newest(self):
        log = ScalingEventLog()
        for t in range(10):
            log.record(event(float(t), detail=f"n{t}"))
        text = render_event_log(log, limit=2)
        assert "n9" in text and "n8" in text and "n0" not in text

    def test_empty(self):
        assert "no scaling events" in render_event_log(ScalingEventLog())


class TestMonitorIntegration:
    def test_run_produces_audit_trail(self):
        from repro.experiments.configs import cpu_bound, make_policy
        from repro.experiments.runner import Simulation
        from dataclasses import replace

        spec = cpu_bound("low")
        small = replace(spec, duration=40.0, specs=spec.specs[:2], loads=spec.loads[:2])
        sim = Simulation.build(
            config=small.config, specs=list(small.specs), loads=list(small.loads),
            policy=make_policy("hybrid", small.config),
        )
        summary = sim.run(small.duration)
        log = sim.collector.events
        assert len(log) > 0
        kinds = {e.kind for e in log.events()}
        assert EventKind.VERTICAL in kinds
        # Tallies agree with the audit trail.
        verticals = sum(1 for e in log.events() if e.kind is EventKind.VERTICAL)
        assert verticals == summary.vertical_scale_ops
        ups = sum(1 for e in log.events() if e.kind is EventKind.SCALE_UP)
        assert ups == summary.horizontal_scale_ups

    def test_hyscale_reasons_visible(self):
        from repro.experiments.configs import cpu_bound, make_policy
        from repro.experiments.runner import Simulation
        from dataclasses import replace
        from repro.metrics.events import decision_summary

        spec = cpu_bound("high")
        small = replace(spec, duration=60.0, specs=spec.specs[:3], loads=spec.loads[:3])
        sim = Simulation.build(
            config=small.config, specs=list(small.specs), loads=list(small.loads),
            policy=make_policy("hybrid", small.config),
        )
        sim.run(small.duration)
        summary = decision_summary(sim.collector.events)
        assert any(key.startswith("vertical/acquire") for key in summary)
