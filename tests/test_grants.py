"""The ``Container.advance``/:class:`ResourceGrants` surface.

PR contract: the three per-resource ``advance_*`` methods collapsed into
one ``advance(grants, dt)`` entry point taking a frozen grant bundle; the
old spellings survive as deprecation shims that forward *exactly* (same
floats, same state transitions), mirroring the ``run_experiment`` shim.
"""

import dataclasses

import pytest

from repro.cluster import ResourceGrants
from repro.cluster.container import Container
from repro.workloads.requests import Request

from tests.conftest import make_container


def make_request(cpu=0.5, mem=10.0, net=0.0, disk=0.0, timeout=30.0) -> Request:
    kwargs = dict(
        service="svc",
        arrival_time=0.0,
        cpu_work=cpu,
        mem_footprint=mem,
        net_mbits=net,
        timeout=timeout,
    )
    if disk:
        kwargs["disk_mb"] = disk
    return Request(**kwargs)


class TestResourceGrants:
    def test_frozen(self):
        grants = ResourceGrants(cpu=1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            grants.cpu = 2.0

    def test_defaults_grant_nothing(self):
        grants = ResourceGrants()
        assert grants.cpu is None
        assert grants.disk is None
        assert grants.net is None
        assert grants.contention == 1.0

    def test_exported_from_top_level(self):
        import repro

        assert repro.ResourceGrants is ResourceGrants


class TestAdvanceDispatch:
    def test_cpu_grant_drives_compute(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=0.5)
        container.accept(request, 0.0)
        container.advance(ResourceGrants(cpu=1.0), dt=1.0)
        assert request.cpu_remaining == 0.0

    def test_empty_grants_touch_nothing(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=0.5)
        container.accept(request, 0.0)
        container.advance(ResourceGrants(), dt=1.0)
        assert request.cpu_remaining == 0.5
        assert container.disk_usage == 0.0
        assert container.net_usage == 0.0

    def test_net_grant_drives_transfer(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=0.0, net=10.0)
        container.accept(request, 0.0)
        container.advance(ResourceGrants(net=10.0), dt=1.0)
        assert container.net_usage == 10.0


class TestDeprecatedShims:
    """Old spellings forward exactly and warn; one pin per resource."""

    def _twins(self, overheads):
        return (
            make_container(overheads=overheads),
            make_container(overheads=overheads),
        )

    def test_advance_compute_warns_and_matches(self, overheads):
        new, old = self._twins(overheads)
        for container in (new, old):
            container.accept(make_request(cpu=2.0), 0.0)
        new.advance(ResourceGrants(cpu=1.0, contention=1.0), 1.0)
        with pytest.warns(DeprecationWarning, match="advance_compute"):
            old.advance_compute(1.0, 1.0, 1.0)
        assert old.cpu_usage == new.cpu_usage
        assert old.inflight[0].cpu_remaining == new.inflight[0].cpu_remaining
        assert old._net_cpu_headroom == new._net_cpu_headroom

    def test_advance_disk_warns_and_matches(self, overheads):
        new, old = self._twins(overheads)
        for container in (new, old):
            container.accept(make_request(cpu=0.0, disk=30.0), 0.0)
        new.advance(ResourceGrants(disk=10.0), 1.0)
        with pytest.warns(DeprecationWarning, match="advance_disk"):
            old.advance_disk(10.0, 1.0)
        assert old.disk_usage == new.disk_usage
        assert old.inflight[0].disk_remaining == new.inflight[0].disk_remaining

    def test_advance_network_warns_and_matches(self, overheads):
        new, old = self._twins(overheads)
        for container in (new, old):
            container.accept(make_request(cpu=0.0, net=25.0), 0.0)
        new.advance(ResourceGrants(net=10.0), 1.0)
        with pytest.warns(DeprecationWarning, match="advance_network"):
            old.advance_network(10.0, 1.0)
        assert old.net_usage == new.net_usage
        assert old.inflight[0].net_remaining == new.inflight[0].net_remaining

    def test_shims_exist_on_subclass_instances(self, overheads):
        """The shims live on Container, so stress subclasses inherit them."""
        from repro.cluster.stress import CpuStressContainer

        stress = CpuStressContainer("stress", 1.0, overheads=overheads)
        with pytest.warns(DeprecationWarning):
            stress.advance_compute(1.0, 1.0, 1.0)
        assert isinstance(stress, Container)
