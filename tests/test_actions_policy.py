"""Tests for scaling actions, the planning ledger, and interval guards."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.core.actions import AddReplica, RemoveReplica, VerticalScale
from repro.core.intervals import RescaleIntervalGuard
from repro.core.policy import NodeLedger
from repro.errors import PolicyError

from tests.conftest import make_node_view, make_service, make_view


class TestActions:
    def test_vertical_needs_one_axis(self):
        with pytest.raises(PolicyError):
            VerticalScale("c1")

    def test_vertical_validation(self):
        with pytest.raises(PolicyError):
            VerticalScale("c1", cpu_request=-1.0)
        with pytest.raises(PolicyError):
            VerticalScale("c1", mem_limit=0.0)
        VerticalScale("c1", cpu_request=1.0, mem_limit=512.0)  # ok

    def test_add_replica_validation(self):
        with pytest.raises(PolicyError):
            AddReplica("svc", cpu_request=0.0, mem_limit=512.0, net_rate=0.0)
        AddReplica("svc", cpu_request=0.5, mem_limit=512.0, net_rate=0.0)  # ok

    def test_remove_replica_validation(self):
        with pytest.raises(PolicyError):
            RemoveReplica("")


class TestNodeLedger:
    def ledger(self):
        view = make_view(
            nodes=(
                make_node_view("n0", allocated=ResourceVector(1.0, 1024.0, 100.0), services=("a",)),
                make_node_view("n1"),
            ),
            services=(make_service("a"),),
        )
        return NodeLedger(view)

    def test_initial_availability(self):
        ledger = self.ledger()
        assert ledger.available("n0") == ResourceVector(3.0, 7168.0, 900.0)
        assert ledger.available("n1").cpu == 4.0

    def test_take_and_release(self):
        ledger = self.ledger()
        ledger.take("n1", ResourceVector(cpu=2.0))
        assert ledger.available("n1").cpu == 2.0
        ledger.release("n1", ResourceVector(cpu=1.0))
        assert ledger.available("n1").cpu == 3.0

    def test_overdraft_rejected(self):
        ledger = self.ledger()
        with pytest.raises(PolicyError):
            ledger.take("n1", ResourceVector(cpu=5.0))

    def test_negative_amounts_rejected(self):
        ledger = self.ledger()
        with pytest.raises(PolicyError):
            ledger.take("n1", ResourceVector(cpu=-1.0))
        with pytest.raises(PolicyError):
            ledger.release("n1", ResourceVector(cpu=-1.0))

    def test_unknown_node_rejected(self):
        with pytest.raises(PolicyError):
            self.ledger().available("ghost")

    def test_candidates_exclude_hosting(self):
        ledger = self.ledger()
        minimum = ResourceVector(0.25, 512.0, 50.0)
        assert ledger.candidates_for("a", minimum) == ["n1"]
        assert ledger.candidates_for("a", minimum, exclude_hosting=False) == ["n1", "n0"]

    def test_candidates_ordered_by_free_cpu(self):
        ledger = self.ledger()
        # n1 has more free CPU than n0.
        assert ledger.candidates_for("b", ResourceVector(0.25, 1.0, 0.0)) == ["n1", "n0"]

    def test_plan_placement_marks_hosting(self):
        ledger = self.ledger()
        ledger.plan_placement("n1", "a", ResourceVector(0.5, 512.0, 50.0))
        assert ledger.hosts("n1", "a")
        assert ledger.candidates_for("a", ResourceVector(0.1, 1.0, 0.0)) == []


class TestIntervalGuard:
    def test_first_operation_always_allowed(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        assert guard.can_scale_up("svc", 0.0)
        assert guard.can_scale_down("svc", 0.0)

    def test_up_interval_enforced(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        guard.record_scale_up("svc", 10.0)
        assert not guard.can_scale_up("svc", 12.0)
        assert guard.can_scale_up("svc", 13.0)

    def test_down_interval_enforced(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        guard.record_scale_down("svc", 10.0)
        assert not guard.can_scale_down("svc", 59.0)
        assert guard.can_scale_down("svc", 60.0)

    def test_up_and_down_independent(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        guard.record_scale_up("svc", 10.0)
        assert guard.can_scale_down("svc", 10.0)

    def test_per_service_isolation(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        guard.record_scale_up("a", 10.0)
        assert guard.can_scale_up("b", 10.0)

    def test_reset(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        guard.record_scale_down("svc", 10.0)
        guard.reset("svc")
        assert guard.can_scale_down("svc", 11.0)

    def test_reset_all(self):
        guard = RescaleIntervalGuard(3.0, 50.0)
        guard.record_scale_down("a", 10.0)
        guard.record_scale_down("b", 10.0)
        guard.reset()
        assert guard.can_scale_down("a", 11.0) and guard.can_scale_down("b", 11.0)

    def test_negative_intervals_rejected(self):
        with pytest.raises(PolicyError):
            RescaleIntervalGuard(-1.0, 50.0)
