"""Tests for the experiment runner's wiring (phase order, defaults)."""

import pytest

from repro import HyScaleCpu, Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.cluster.placement import BinPackPlacement
from repro.config import ClusterConfig
from repro.platform.load_balancer import RoutingPolicy
from repro.workloads import CPU_BOUND, ConstantLoad, ServiceLoad


def build(**kwargs):
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=3), seed=0)
    specs = [MicroserviceSpec(name="svc")]
    loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(4.0))]
    return Simulation.build(
        config=config, specs=specs, loads=loads, policy=HyScaleCpu(), **kwargs
    )


class TestPhaseOrder:
    def test_actor_order_matches_design(self):
        """DESIGN.md §4 / runner docstring: faults -> arrivals -> routing ->
        compute -> sampling -> decisions -> metrics."""
        sim = build()
        assert sim.engine.actor_names == [
            "faults",
            "generator",
            "lb",
            "cluster",
            "node-managers",
            "monitor",
            "metrics",
        ]

    def test_monitor_runs_after_sampling(self):
        names = build().engine.actor_names
        assert names.index("node-managers") < names.index("monitor")

    def test_metrics_last(self):
        assert build().engine.actor_names[-1] == "metrics"


class TestDefaults:
    def test_default_routing_capacity_weighted(self):
        """Heterogeneous replica sizes (vertical scaling!) make plain
        round-robin pathological, so the platform defaults to
        capacity-weighted routing."""
        sim = build()
        assert sim.load_balancer.policy is RoutingPolicy.WEIGHTED_CPU

    def test_routing_override(self):
        sim = build(routing=RoutingPolicy.ROUND_ROBIN)
        assert sim.load_balancer.policy is RoutingPolicy.ROUND_ROBIN

    def test_placement_override_used_for_initial_deployment(self):
        sim = build(placement=BinPackPlacement())
        # BinPack stacks the initial replica deterministically on one node.
        hosting = [n for n in sim.cluster.sorted_nodes() if n.containers]
        assert len(hosting) == 1

    def test_initial_replicas_start_warm(self):
        sim = build()
        assert all(
            c.is_serving for c in sim.cluster.service("svc").active_replicas()
        )

    def test_summary_carries_labels(self):
        sim = build()
        summary = sim.run(10.0)
        assert summary.algorithm == "hybrid"
        assert summary.workload == "custom"
        assert summary.duration == pytest.approx(10.0)

    def test_timeline_cadence(self):
        sim = build(timeline_every=2.0)
        summary = sim.run(10.0)
        times = [p.time for p in summary.timeline]
        assert times == sorted(times)
        assert len(times) >= 5


class TestTimestepRobustness:
    def test_orderings_stable_under_finer_dt(self):
        """Halving the step width must not flip who wins — results reflect
        the modeled system, not the integrator."""
        from dataclasses import replace
        from repro.experiments.configs import cpu_bound, make_policy
        from repro.experiments.runner import run_experiment

        def run(dt: float, algorithm: str):
            spec = cpu_bound("high")
            small = replace(spec, duration=60.0, specs=spec.specs[:3], loads=spec.loads[:3])
            config = small.config.with_overrides(dt=dt)
            return run_experiment(
                config=config, specs=list(small.specs), loads=list(small.loads),
                policy=make_policy(algorithm, config), duration=small.duration,
            )

        for dt in (0.5, 0.25):
            k8s = run(dt, "kubernetes")
            hybrid = run(dt, "hybrid")
            assert hybrid.avg_response_time < k8s.avg_response_time, f"flip at dt={dt}"

    def test_tier_round_robin_in_full_simulation(self):
        """The distributed LB tier with per-proxy round-robin state runs a
        whole experiment cleanly."""
        from repro import HyScaleCpu, Simulation, SimulationConfig
        from repro.cluster import MicroserviceSpec
        from repro.config import ClusterConfig
        from repro.platform.load_balancer import RoutingPolicy
        from repro.workloads import CPU_BOUND, ConstantLoad, ServiceLoad

        config = SimulationConfig(
            cluster=ClusterConfig(worker_nodes=3, load_balancers=4), seed=2
        )
        sim = Simulation.build(
            config=config,
            specs=[MicroserviceSpec(name="svc", max_replicas=6)],
            loads=[ServiceLoad("svc", CPU_BOUND, ConstantLoad(8.0))],
            policy=HyScaleCpu(),
            routing=RoutingPolicy.ROUND_ROBIN,
        )
        assert len(sim.load_balancer.balancers) == 4
        summary = sim.run(45.0)
        assert summary.availability > 0.95
        routed = [b.total_routed for b in sim.load_balancer.balancers]
        assert all(count > 0 for count in routed)
