"""Tests for multi-seed aggregation."""

from dataclasses import replace

import pytest

from repro.analysis.stats import multi_seed, ordering_holds
from repro.errors import ExperimentError
from repro.experiments.configs import cpu_bound


def small_factory(seed: int):
    spec = cpu_bound("low", seed=seed)
    return replace(spec, duration=30.0, specs=spec.specs[:2], loads=spec.loads[:2])


class TestMultiSeed:
    def test_aggregates_over_seeds(self):
        aggregate = multi_seed(small_factory, "hybrid", seeds=(0, 1))
        assert aggregate.algorithm == "hybrid"
        assert aggregate.seeds == (0, 1)
        assert len(aggregate.runs) == 2
        assert aggregate.mean_response > 0
        assert aggregate.std_response >= 0

    def test_single_seed_zero_std(self):
        aggregate = multi_seed(small_factory, "hybrid", seeds=(3,))
        assert aggregate.std_response == 0.0

    def test_interval_contains_mean(self):
        aggregate = multi_seed(small_factory, "hybrid", seeds=(0, 1))
        lo, hi = aggregate.response_interval()
        assert lo <= aggregate.mean_response <= hi
        assert lo >= 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            multi_seed(small_factory, "hybrid", seeds=())


class TestOrderingHolds:
    def test_known_ordering(self):
        # The Figure 6 ordering at tiny scale: hybrid beats a do-nothing
        # comparison?  Use kubernetes as the slower side with overload.
        def factory(seed):
            spec = cpu_bound("low", seed=seed)
            return replace(spec, duration=40.0, specs=spec.specs[:3], loads=spec.loads[:3])

        assert ordering_holds(factory, faster="hybrid", slower="kubernetes", seeds=(0, 1))

    def test_reflexive_ordering_fails(self):
        assert not ordering_holds(small_factory, faster="hybrid", slower="hybrid", seeds=(0,))
