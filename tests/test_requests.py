"""Tests for the request lifecycle and failure taxonomy."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.requests import FailureReason, Request, RequestState


def make_request(**kwargs) -> Request:
    defaults = dict(service="svc", arrival_time=1.0, cpu_work=0.5, mem_footprint=10.0, net_mbits=2.0)
    defaults.update(kwargs)
    return Request(**defaults)


class TestConstruction:
    def test_starts_queued(self):
        request = make_request()
        assert request.state is RequestState.QUEUED
        assert not request.is_finished

    def test_unique_ids(self):
        assert make_request().request_id != make_request().request_id

    def test_rejects_negative_demands(self):
        with pytest.raises(WorkloadError):
            make_request(cpu_work=-1.0)
        with pytest.raises(WorkloadError):
            make_request(mem_footprint=-1.0)
        with pytest.raises(WorkloadError):
            make_request(net_mbits=-1.0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(WorkloadError):
            make_request(timeout=0.0)


class TestPhases:
    def test_cpu_then_net_phase(self):
        request = make_request()
        request.assign("c1", 1.0)
        assert request.in_cpu_phase and not request.in_net_phase
        request.advance_cpu(0.5)
        assert not request.in_cpu_phase and request.in_net_phase
        request.advance_net(2.0)
        assert not request.in_net_phase

    def test_no_cpu_work_goes_straight_to_net(self):
        request = make_request(cpu_work=0.0)
        request.assign("c1", 1.0)
        assert not request.in_cpu_phase and request.in_net_phase

    def test_overhead_factor_inflates_cpu(self):
        request = make_request(cpu_work=1.0)
        request.assign("c1", 1.0, overhead_factor=1.2)
        assert request.effective_cpu_work == pytest.approx(1.2)
        request.advance_cpu(1.0)
        assert request.in_cpu_phase  # 0.2 still remaining

    def test_remaining_never_negative(self):
        request = make_request(cpu_work=0.5)
        request.assign("c1", 1.0)
        request.advance_cpu(10.0)
        assert request.cpu_remaining == 0.0


class TestMemoryRamp:
    def test_quarter_at_admission(self):
        request = make_request(mem_footprint=100.0)
        request.assign("c1", 1.0)
        assert request.resident_memory == pytest.approx(25.0)

    def test_full_at_completion_of_work(self):
        request = make_request(mem_footprint=100.0, cpu_work=1.0, net_mbits=0.0)
        request.assign("c1", 1.0)
        request.advance_cpu(1.0)
        assert request.resident_memory == pytest.approx(100.0)

    def test_progress_spans_both_phases(self):
        request = make_request(cpu_work=1.0, net_mbits=1.0)
        request.assign("c1", 1.0)
        request.advance_cpu(1.0)
        assert request.progress == pytest.approx(0.5)

    def test_zero_work_counts_as_done(self):
        request = make_request(cpu_work=0.0, net_mbits=0.0)
        assert request.progress == 1.0


class TestTransitions:
    def test_assign_only_from_queued(self):
        request = make_request()
        request.assign("c1", 1.0)
        with pytest.raises(WorkloadError):
            request.assign("c2", 2.0)

    def test_overhead_below_one_rejected(self):
        with pytest.raises(WorkloadError):
            make_request().assign("c1", 1.0, overhead_factor=0.9)

    def test_complete_records_response_time(self):
        request = make_request(arrival_time=1.0)
        request.assign("c1", 1.5)
        request.complete(3.0)
        assert request.state is RequestState.SUCCEEDED
        assert request.response_time == pytest.approx(2.0)

    def test_fail_records_reason(self):
        request = make_request()
        request.fail(5.0, FailureReason.REMOVAL)
        assert request.state is RequestState.FAILED
        assert request.failure_reason is FailureReason.REMOVAL

    def test_double_finish_rejected(self):
        request = make_request()
        request.complete(2.0)
        with pytest.raises(WorkloadError):
            request.fail(3.0, FailureReason.CONNECTION)
        with pytest.raises(WorkloadError):
            request.complete(3.0)

    def test_deadline(self):
        request = make_request(arrival_time=10.0, timeout=5.0)
        assert request.deadline() == 15.0

    def test_negative_progress_rejected(self):
        request = make_request()
        request.assign("c1", 1.0)
        with pytest.raises(WorkloadError):
            request.advance_cpu(-0.1)
        with pytest.raises(WorkloadError):
            request.advance_net(-0.1)
