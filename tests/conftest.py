"""Shared fixtures and builders for the test suite.

The view builders (:func:`make_replica`, :func:`make_service`,
:func:`make_node`, :func:`make_view`) let policy tests construct cluster
snapshots declaratively instead of spinning up a whole simulation.
"""

from __future__ import annotations

import itertools

import pytest

from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig, OverheadModel, SimulationConfig
from repro.core.view import ClusterView, NodeView, ReplicaView, ServiceView

_ids = itertools.count(1)


# ----------------------------------------------------------------------
# The --simsan lane: run the whole suite under the recording sanitizer
# ----------------------------------------------------------------------
def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--simsan",
        action="store_true",
        default=False,
        help="inject a recording SimSanitizer into every Simulation.build "
        "call and fail any test whose runs violate a simulation invariant",
    )


@pytest.fixture(autouse=True)
def _simsan_lane(request: pytest.FixtureRequest, monkeypatch: pytest.MonkeyPatch):
    """Under ``--simsan``, audit every simulation the test builds.

    Tests that pass their own recording sanitizer (or a profiler, which
    is mutually exclusive with sanitizing) are left alone; everything
    else gets a fresh :class:`~repro.sanitizer.SimSanitizer`, and the
    test fails if any of its runs recorded a violation.
    """
    if not request.config.getoption("--simsan"):
        yield
        return

    from repro.experiments.runner import Simulation
    from repro.sanitizer import SimSanitizer, render_san_report

    recorders: list[SimSanitizer] = []
    original = Simulation.build.__func__

    def build(cls, **kwargs):
        supplied = kwargs.get("sanitizer")
        if kwargs.get("profiler") is None and not getattr(supplied, "enabled", False):
            recorder = SimSanitizer()
            kwargs["sanitizer"] = recorder
            recorders.append(recorder)
        return original(cls, **kwargs)

    monkeypatch.setattr(Simulation, "build", classmethod(build))
    yield
    violations = tuple(v for recorder in recorders for v in recorder.violations())
    if violations:
        pytest.fail("--simsan: " + render_san_report(violations), pytrace=False)


@pytest.fixture
def overheads() -> OverheadModel:
    """An overhead model with every overhead switched off — tests of
    scheduler arithmetic should not fight contention constants."""
    return OverheadModel(
        colocation_contention=0.0,
        colocation_cap=1.0,
        distribution_log_coeff=0.0,
        container_base_memory=100.0,
        container_background_cpu=0.0,
        container_boot_delay=0.0,
        swap_slowdown=0.5,
        oom_factor=2.0,
        txq_penalty_max=0.0,
        txq_penalty_half_rate=35.0,
        txq_oversub_penalty=0.0,
        net_cpu_per_mbit=0.0,
    )


@pytest.fixture
def paper_overheads() -> OverheadModel:
    """The calibrated defaults (for tests of the overheads themselves)."""
    return OverheadModel()


@pytest.fixture
def node(overheads) -> Node:
    """A paper-shaped machine: 4 cores, 8 GiB, 1 Gbit/s."""
    return Node("n0", ResourceVector(4.0, 8192.0, 1000.0), overheads)


@pytest.fixture
def small_config() -> SimulationConfig:
    """A 3-node cluster config for integration tests."""
    return SimulationConfig(cluster=ClusterConfig(worker_nodes=3), seed=1)


def make_container(
    service: str = "svc",
    *,
    cpu: float = 0.5,
    mem: float = 512.0,
    net: float = 50.0,
    boot: float = 0.0,
    concurrency: int = 16,
    overheads: OverheadModel | None = None,
) -> Container:
    """A container with sane defaults for unit tests."""
    return Container(
        service=service,
        replica_index=next(_ids),
        cpu_request=cpu,
        mem_limit=mem,
        net_rate=net,
        boot_delay=boot,
        max_concurrency=concurrency,
        overheads=overheads,
    )


# ----------------------------------------------------------------------
# View builders for policy tests
# ----------------------------------------------------------------------
def make_replica(
    container_id: str,
    *,
    service: str = "svc",
    node: str = "n0",
    cpu_request: float = 0.5,
    cpu_usage: float = 0.25,
    mem_limit: float = 512.0,
    mem_usage: float = 200.0,
    net_rate: float = 50.0,
    net_usage: float = 10.0,
    disk_quota: float = 50.0,
    disk_usage: float = 0.0,
    booting: bool = False,
) -> ReplicaView:
    """One replica snapshot."""
    return ReplicaView(
        container_id=container_id,
        service=service,
        node=node,
        booting=booting,
        cpu_request=cpu_request,
        cpu_usage=cpu_usage,
        mem_limit=mem_limit,
        mem_usage=mem_usage,
        net_rate=net_rate,
        net_usage=net_usage,
        disk_quota=disk_quota,
        disk_usage=disk_usage,
    )


def make_service(
    name: str = "svc",
    replicas: tuple[ReplicaView, ...] = (),
    *,
    min_replicas: int = 1,
    max_replicas: int = 16,
    target: float = 0.5,
    base_cpu: float = 0.5,
    base_mem: float = 512.0,
    base_net: float = 50.0,
) -> ServiceView:
    """One service snapshot."""
    return ServiceView(
        name=name,
        min_replicas=min_replicas,
        max_replicas=max_replicas,
        target_utilization=target,
        base_cpu_request=base_cpu,
        base_mem_limit=base_mem,
        base_net_rate=base_net,
        replicas=replicas,
    )


def make_node_view(
    name: str = "n0",
    *,
    capacity: ResourceVector | None = None,
    allocated: ResourceVector | None = None,
    services: tuple[str, ...] = (),
) -> NodeView:
    """One node snapshot (defaults: paper hardware, nothing allocated)."""
    return NodeView(
        name=name,
        capacity=capacity or ResourceVector(4.0, 8192.0, 1000.0),
        allocated=allocated or ResourceVector.zero(),
        services=services,
    )


def make_view(
    services: tuple[ServiceView, ...] = (),
    nodes: tuple[NodeView, ...] = (),
    now: float = 100.0,
) -> ClusterView:
    """A full cluster snapshot; nodes default to hosting the replicas
    referenced by the services."""
    if not nodes:
        node_names = sorted(
            {r.node for s in services for r in s.replicas} or {"n0"}
        )
        hosted: dict[str, set[str]] = {n: set() for n in node_names}
        allocated: dict[str, ResourceVector] = {n: ResourceVector.zero() for n in node_names}
        for s in services:
            for r in s.replicas:
                hosted[r.node].add(s.name)
                allocated[r.node] = allocated[r.node] + ResourceVector(
                    r.cpu_request, r.mem_limit, r.net_rate
                )
        nodes = tuple(
            make_node_view(n, allocated=allocated[n], services=tuple(sorted(hosted[n])))
            for n in node_names
        )
    return ClusterView(now=now, services=services, nodes=nodes)
