"""Tests for SimSan: the simulation sanitizer (``repro.sanitizer``).

Covers the protocol/null-object contract, the violation records and their
JSONL codec, every runtime check via an injected violation, the engine
step bracket, and the fault-injection scenarios that must *not* trip the
sanitizer (crashes, node additions, and OOM kills are legitimate writes).
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig, SimulationConfig
from repro.errors import SanitizerError, SimulationError
from repro.instrument import NullInstrument, when_enabled
from repro.obs.profiler import PhaseProfiler
from repro.sanitizer import (
    NULL_SANITIZER,
    SAN_SCHEMA,
    NullSanitizer,
    Sanitizer,
    SanViolation,
    SimSanitizer,
    parse_san_line,
    read_san_jsonl,
    render_san_report,
    violation_from_dict,
    violation_to_dict,
    violation_to_json_line,
    violations_to_jsonl,
    write_san_jsonl,
)
from repro.sim.engine import Engine
from repro.workloads import CPU_BOUND, MEMORY_BOUND, ConstantLoad, ServiceLoad

from tests.conftest import make_container, make_node_view, make_replica, make_service, make_view


def build_sim(*, sanitizer=None, policy="hybrid", seed=0, rate=6.0, worker_nodes=3,
              profile=CPU_BOUND, **spec_kwargs):
    from repro.cluster.microservice import MicroserviceSpec
    from repro.experiments.runner import Simulation

    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=worker_nodes), seed=seed)
    specs = [MicroserviceSpec(name="svc", min_replicas=2, max_replicas=8, **spec_kwargs)]
    loads = [ServiceLoad("svc", profile, ConstantLoad(rate))]
    kwargs = {} if sanitizer is None else {"sanitizer": sanitizer}
    return Simulation.build(config=config, specs=specs, loads=loads, policy=policy, **kwargs)


def bound_sanitizer(worker_nodes=1, **kwargs) -> tuple[SimSanitizer, Cluster]:
    cluster = Cluster.from_config(ClusterConfig(worker_nodes=worker_nodes))
    sanitizer = SimSanitizer(**kwargs)
    sanitizer.bind(cluster=cluster)
    return sanitizer, cluster


def one_step(sanitizer: SimSanitizer, *, now: float, step: int = 1,
             next_due: float | None = None) -> None:
    """Drive one empty, well-formed step bracket."""
    sanitizer.begin_step(now=now, step=step)
    sanitizer.end_step(now=now, next_due=next_due)


# ----------------------------------------------------------------------
# Protocol + null-object contract
# ----------------------------------------------------------------------
class TestProtocol:
    def test_implementations_satisfy_the_protocol(self):
        assert isinstance(NullSanitizer(), Sanitizer)
        assert isinstance(SimSanitizer(), Sanitizer)

    def test_null_sanitizer_is_disabled_and_stateless(self):
        assert NULL_SANITIZER.enabled is False
        assert isinstance(NULL_SANITIZER, NullInstrument)
        # Every hook is a no-op with no bracket discipline.
        NULL_SANITIZER.end_step(now=1.0, next_due=0.5)
        NULL_SANITIZER.after_actor(name="anything", now=1.0)
        NULL_SANITIZER.begin_step(now=0.0, step=0)

    def test_when_enabled_gates_on_the_flag(self):
        assert when_enabled(None) is None
        assert when_enabled(NULL_SANITIZER) is None
        recording = SimSanitizer()
        assert when_enabled(recording) is recording

    def test_recording_sanitizer_is_enabled(self):
        assert SimSanitizer().enabled is True

    def test_constructor_validation(self):
        with pytest.raises(SanitizerError):
            SimSanitizer(tolerance=-1.0)
        with pytest.raises(SanitizerError):
            SimSanitizer(max_violations=0)


# ----------------------------------------------------------------------
# Violation records + codec
# ----------------------------------------------------------------------
def _violation(**overrides) -> SanViolation:
    payload = dict(
        now=3.5, step=7, check="conservation", subject="node-00/cpu",
        message="allocated cpu exceeds node capacity", detail="9.0 > 4.0 cores",
    )
    payload.update(overrides)
    return SanViolation(**payload)


class TestRecords:
    def test_unknown_check_rejected(self):
        with pytest.raises(SanitizerError):
            _violation(check="vibes")

    def test_dict_roundtrip(self):
        violation = _violation()
        assert violation_from_dict(violation_to_dict(violation)) == violation

    def test_unknown_fields_rejected(self):
        payload = violation_to_dict(_violation())
        payload["extra"] = 1
        with pytest.raises(SanitizerError):
            violation_from_dict(payload)

    def test_missing_fields_rejected(self):
        payload = violation_to_dict(_violation())
        del payload["subject"]
        with pytest.raises(SanitizerError):
            violation_from_dict(payload)

    def test_records_sort_by_time_then_step(self):
        late = _violation(now=9.0, step=18)
        early = _violation(now=1.0, step=2)
        assert sorted([late, early]) == [early, late]


class TestExport:
    def test_jsonl_line_roundtrip_and_schema_tag(self):
        violation = _violation()
        line = violation_to_json_line(violation)
        assert f'"schema":"{SAN_SCHEMA}"' in line
        assert parse_san_line(line) == violation

    def test_wrong_schema_rejected(self):
        line = violation_to_json_line(_violation()).replace(SAN_SCHEMA, "repro.san/99")
        with pytest.raises(SanitizerError):
            parse_san_line(line)

    def test_non_object_line_rejected(self):
        with pytest.raises(SanitizerError):
            parse_san_line("[1,2]")
        with pytest.raises(SanitizerError):
            parse_san_line("not json")

    def test_empty_report_is_empty_string(self):
        assert violations_to_jsonl([]) == ""

    def test_file_roundtrip(self, tmp_path):
        violations = (_violation(), _violation(now=4.0, step=8, check="aliasing",
                                               subject="rogue"))
        path = tmp_path / "san.jsonl"
        assert write_san_jsonl(violations, path) == 2
        assert read_san_jsonl(path) == violations

    def test_file_errors_carry_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(violation_to_json_line(_violation()) + "\nnot json\n")
        with pytest.raises(SanitizerError, match="bad.jsonl:2"):
            read_san_jsonl(path)

    def test_render_groups_by_check(self):
        report = render_san_report(
            (_violation(), _violation(check="time", subject="clock", detail=""))
        )
        assert "SimSan: 2 invariant violation(s)" in report
        assert "[conservation]" in report and "[time]" in report
        assert "node-00/cpu" in report and "9.0 > 4.0 cores" in report

    def test_render_clean_report(self):
        assert render_san_report(()) == "SimSan: no invariant violations.\n"


# ----------------------------------------------------------------------
# Bracket discipline (misuse raises; it never records)
# ----------------------------------------------------------------------
class TestBracketDiscipline:
    def test_hooks_before_bind_raise(self):
        sanitizer = SimSanitizer()
        with pytest.raises(SanitizerError, match="bind"):
            sanitizer.begin_step(now=0.5, step=1)

    def test_rebind_to_other_cluster_raises(self):
        sanitizer, cluster = bound_sanitizer()
        sanitizer.bind(cluster=cluster)  # same cluster: idempotent
        with pytest.raises(SanitizerError):
            sanitizer.bind(cluster=Cluster.from_config(ClusterConfig(worker_nodes=1)))

    def test_double_begin_raises(self):
        sanitizer, _ = bound_sanitizer()
        sanitizer.begin_step(now=0.5, step=1)
        with pytest.raises(SanitizerError):
            sanitizer.begin_step(now=1.0, step=2)

    def test_hooks_outside_bracket_raise(self):
        sanitizer, _ = bound_sanitizer()
        with pytest.raises(SanitizerError):
            sanitizer.after_actor(name="cluster", now=0.5)
        with pytest.raises(SanitizerError):
            sanitizer.end_step(now=0.5, next_due=None)

    def test_clean_bracket_counts_steps(self):
        sanitizer, _ = bound_sanitizer()
        one_step(sanitizer, now=0.5, step=1)
        one_step(sanitizer, now=1.0, step=2)
        assert sanitizer.steps_checked == 2
        assert len(sanitizer) == 0


# ----------------------------------------------------------------------
# Each runtime check fires on an injected violation
# ----------------------------------------------------------------------
class TestTimeCheck:
    def test_non_advancing_clock_recorded(self):
        sanitizer, _ = bound_sanitizer()
        one_step(sanitizer, now=1.0, step=1)
        one_step(sanitizer, now=1.0, step=2)  # did not advance
        (violation,) = sanitizer.violations()
        assert violation.check == "time"
        assert violation.subject == "clock"

    def test_advancing_clock_is_clean(self):
        sanitizer, _ = bound_sanitizer()
        for step in range(1, 5):
            one_step(sanitizer, now=0.5 * step, step=step)
        assert sanitizer.violations() == ()


class TestEventOrderCheck:
    def test_due_event_surviving_fire_due_recorded(self):
        sanitizer, _ = bound_sanitizer()
        sanitizer.begin_step(now=2.0, step=4)
        sanitizer.end_step(now=2.0, next_due=1.5)
        (violation,) = sanitizer.violations()
        assert violation.check == "events"
        assert "next_due" in violation.detail

    def test_future_event_is_clean(self):
        sanitizer, _ = bound_sanitizer()
        one_step(sanitizer, now=2.0, next_due=2.5)
        assert sanitizer.violations() == ()


class TestConservationCheck:
    def test_overcommitted_node_recorded_per_axis(self):
        sanitizer, cluster = bound_sanitizer()
        node = cluster.sorted_nodes()[0]
        huge = make_container(
            cpu=node.capacity.cpu + 1.0,
            mem=node.capacity.memory + 1.0,
            net=node.capacity.network,
        )
        node.add_container(huge, enforce_capacity=False)
        # A second shaped container pushes the summed rates past the NIC
        # (each class alone is attachable; the *sum* breaks conservation).
        node.add_container(make_container(net=node.capacity.network / 2), enforce_capacity=False)
        sanitizer.check_conservation(now=1.0)
        checks = {v.subject.split("/", 1)[1] for v in sanitizer.violations()
                  if v.check == "conservation"}
        assert {"cpu", "memory", "network"} <= checks

    def test_detached_nic_recorded(self):
        sanitizer, cluster = bound_sanitizer()
        node = cluster.sorted_nodes()[0]
        container = make_container()
        node.add_container(container)
        node.nic.detach(container.container_id)
        sanitizer.check_conservation(now=1.0)
        (violation,) = sanitizer.violations()
        assert violation.check == "conservation"
        assert "no HTB class" in violation.message

    def test_nic_rate_disagreement_recorded(self):
        sanitizer, cluster = bound_sanitizer()
        node = cluster.sorted_nodes()[0]
        container = make_container(net=50.0)
        node.add_container(container)
        # Reshape the HTB class directly, bypassing node.reshape_network's
        # container bookkeeping: the tc and daemon views now disagree.
        node.nic.reshape(container.container_id, rate=80.0)
        sanitizer.check_conservation(now=1.0)
        (violation,) = sanitizer.violations()
        assert violation.check == "conservation"
        assert "disagrees" in violation.message

    def test_within_capacity_is_clean(self):
        sanitizer, cluster = bound_sanitizer()
        node = cluster.sorted_nodes()[0]
        node.add_container(make_container())
        sanitizer.check_conservation(now=1.0)
        assert sanitizer.violations() == ()


class TestLedgerCheck:
    def test_phantom_node_and_replica_recorded(self):
        sanitizer, _ = bound_sanitizer()
        view = make_view(
            services=(make_service("svc", (make_replica("svc-0", node="ghost"),)),),
            nodes=(make_node_view("ghost"),),
        )
        sanitizer.check_view(now=1.0, view=view)
        checks = [v for v in sanitizer.violations() if v.check == "ledger"]
        assert any("does not host" in v.message for v in checks)
        assert any("not a live container" in v.message for v in checks)

    def test_stale_allocation_recorded(self):
        sanitizer, cluster = bound_sanitizer()
        node = cluster.sorted_nodes()[0]
        view = make_view(
            nodes=(
                make_node_view(
                    node.name,
                    capacity=node.capacity,
                    allocated=ResourceVector(1.0, 512.0, 50.0),  # node is empty
                ),
            ),
        )
        sanitizer.check_view(now=1.0, view=view)
        (violation,) = sanitizer.violations()
        assert violation.check == "ledger"
        assert violation.subject == f"{node.name}/allocated"

    def test_faithful_view_is_clean(self):
        sanitizer, cluster = bound_sanitizer()
        node = cluster.sorted_nodes()[0]
        view = make_view(
            nodes=(
                make_node_view(
                    node.name, capacity=node.capacity, allocated=node.allocated()
                ),
            ),
        )
        sanitizer.check_view(now=1.0, view=view)
        assert sanitizer.violations() == ()


class TestAliasingCheck:
    def test_rogue_actor_recorded_with_its_phase_name(self):
        sanitizer = SimSanitizer()
        sim = build_sim(sanitizer=sanitizer)
        node = sim.cluster.sorted_nodes()[0]

        class Rogue:
            def on_step(self, clock):
                # Mutates the fleet domain, owned by the fault injector.
                node.capacity = node.capacity + ResourceVector(cpu=1.0)

        sim.engine.add_actor("rogue", Rogue())
        sim.engine.run_steps(2)
        rogue_hits = [v for v in sanitizer.violations() if v.check == "aliasing"]
        assert rogue_hits, "rogue fleet write went undetected"
        assert all(v.subject == "rogue" for v in rogue_hits)
        assert all("'fleet'" in v.message for v in rogue_hits)

    def test_extra_writers_whitelist_a_custom_actor(self):
        sanitizer = SimSanitizer(extra_writers={"fleet": ["rebalancer"]})
        sim = build_sim(sanitizer=sanitizer)
        node = sim.cluster.sorted_nodes()[0]

        class Rebalancer:
            def on_step(self, clock):
                node.capacity = node.capacity + ResourceVector(cpu=1.0)

        sim.engine.add_actor("rebalancer", Rebalancer())
        sim.engine.run_steps(2)
        assert [v for v in sanitizer.violations() if v.check == "aliasing"] == []


# ----------------------------------------------------------------------
# Recording cap
# ----------------------------------------------------------------------
class TestRecordingCap:
    def test_cap_truncates_and_clear_resets(self):
        sanitizer, _ = bound_sanitizer(max_violations=2)
        for step in range(1, 5):  # every step repeats t=1.0: a time violation each
            one_step(sanitizer, now=1.0, step=step)
        assert len(sanitizer) == 2
        assert sanitizer.truncated is True
        sanitizer.clear()
        assert len(sanitizer) == 0
        assert sanitizer.truncated is False


# ----------------------------------------------------------------------
# Engine + Simulation integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_profiler_and_sanitizer_are_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            Engine(profiler=PhaseProfiler(), sanitizer=SimSanitizer())

    def test_null_sanitizer_keeps_the_bare_hot_loop(self):
        engine = Engine(sanitizer=NULL_SANITIZER)
        assert engine.sanitizer is None

    def test_healthy_run_brackets_every_step_with_zero_violations(self):
        sanitizer = SimSanitizer()
        sim = build_sim(sanitizer=sanitizer)
        sim.run(60.0)
        assert sanitizer.violations() == ()
        assert sanitizer.steps_checked == sim.engine.clock.step > 0
        assert sanitizer.truncated is False

    def test_sanitizer_does_not_perturb_the_run(self):
        bare = build_sim().run(60.0)
        sanitized = build_sim(sanitizer=SimSanitizer()).run(60.0)
        assert sanitized == bare


# ----------------------------------------------------------------------
# Fault injection must not false-positive: crashes, joins, and OOM kills
# are all writes by phases that own their domains.
# ----------------------------------------------------------------------
class TestFaultScenarios:
    def test_node_crash_is_clean(self):
        sanitizer = SimSanitizer()
        sim = build_sim(sanitizer=sanitizer, rate=10.0)
        victim = sim.client.node_name_of(
            sim.cluster.service("svc").active_replicas()[0].container_id
        )
        sim.faults.schedule_crash(20.0, victim)
        sim.engine.run_for(40.0)
        assert victim not in sim.cluster.nodes
        assert sanitizer.violations() == ()

    def test_node_addition_is_clean(self):
        sanitizer = SimSanitizer()
        sim = build_sim(sanitizer=sanitizer)
        sim.faults.schedule_add(15.0, "node-99")
        sim.engine.run_for(30.0)
        assert "node-99" in sim.cluster.nodes
        assert sanitizer.violations() == ()

    def test_oom_kills_are_clean(self):
        sanitizer = SimSanitizer()
        sim = build_sim(
            sanitizer=sanitizer,
            profile=MEMORY_BOUND,
            rate=12.0,
            mem_limit=160.0,  # tight limit: requests push residency past it
        )
        sim.run(90.0)
        assert sim.collector.oom_kills > 0, "scenario failed to trigger an OOM kill"
        assert sanitizer.violations() == ()
