"""Registry tests: the one name-to-policy coercion point behind every API
that accepts ``AutoscalingPolicy | str``."""

import pytest

from repro.config import SimulationConfig
from repro.core import (
    ALGORITHMS,
    EXTENSION_ALGORITHMS,
    HyScaleCpu,
    KubernetesHpa,
    make_policy,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.core.registry import _REGISTRY
from repro.errors import ExperimentError


class TestResolvePolicy:
    def test_instances_pass_through_untouched(self):
        policy = HyScaleCpu()
        assert resolve_policy(policy) is policy

    def test_names_build_fresh_policies(self):
        first = resolve_policy("hybrid")
        second = resolve_policy("hybrid")
        assert isinstance(first, HyScaleCpu)
        assert first is not second

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ExperimentError, match="unknown algorithm"):
            resolve_policy("does-not-exist")

    def test_non_policy_object_raises(self):
        with pytest.raises(ExperimentError, match="expected an AutoscalingPolicy"):
            resolve_policy(42)  # type: ignore[arg-type]

    def test_config_intervals_flow_into_the_policy(self):
        config = SimulationConfig(scale_up_interval=7.0, scale_down_interval=70.0)
        policy = resolve_policy("kubernetes", config)
        assert isinstance(policy, KubernetesHpa)
        assert policy.guard.up_interval == 7.0
        assert policy.guard.down_interval == 70.0


class TestRegistryContents:
    def test_every_paper_and_extension_algorithm_is_registered(self):
        names = registered_policies()
        for name in ALGORITHMS + EXTENSION_ALGORITHMS:
            assert name in names

    def test_registered_names_are_sorted_and_resolvable(self):
        names = registered_policies()
        assert list(names) == sorted(names)
        for name in names:
            assert resolve_policy(name).name == name

    def test_make_policy_defaults_config(self):
        policy = make_policy("kubernetes")
        assert policy.guard.up_interval == SimulationConfig().scale_up_interval

    def test_all_three_registries_enumerate_sorted_and_stable(self):
        # Enumeration order is part of the determinism contract: CLI help,
        # error listings, and sweep shard keys all consume these tuples.
        from repro.engine_core.backend import registered_backends
        from repro.telemetry.sampling import registered_sampling_policies

        for names in (
            registered_policies(),
            registered_backends(),
            registered_sampling_policies(),
        ):
            assert isinstance(names, tuple)
            assert list(names) == sorted(names)
            assert len(set(names)) == len(names)

    def test_late_registration_keeps_enumeration_sorted(self):
        # A name sorting before the built-ins must slot in, not append.
        name = "aaa-registry-order-probe"
        try:
            register_policy(name, lambda config: HyScaleCpu())
            names = registered_policies()
            assert list(names) == sorted(names)
            assert names[0] == name
        finally:
            _REGISTRY.pop(name, None)


class TestRegisterPolicy:
    def test_extension_policies_can_register_and_resolve(self):
        name = "test-registry-probe"
        try:
            register_policy(name, lambda config: HyScaleCpu())
            assert name in registered_policies()
            assert isinstance(resolve_policy(name), HyScaleCpu)
        finally:
            _REGISTRY.pop(name, None)

    def test_duplicate_registration_raises_unless_replaced(self):
        name = "test-registry-dup"
        try:
            register_policy(name, lambda config: HyScaleCpu())
            with pytest.raises(ExperimentError, match="already registered"):
                register_policy(name, lambda config: HyScaleCpu())
            register_policy(name, lambda config: KubernetesHpa(), replace=True)
            assert isinstance(resolve_policy(name), KubernetesHpa)
        finally:
            _REGISTRY.pop(name, None)

    def test_empty_name_rejected(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            register_policy("", lambda config: HyScaleCpu())


class TestStringAcceptingSurfaces:
    def test_simulation_build_accepts_a_name(self):
        from tests.test_determinism_end_to_end import _fresh_simulation

        simulation = _fresh_simulation(seed=2)
        # Same wiring, but by name through the public entry point.
        from repro.experiments.configs import cpu_bound
        from repro.experiments.runner import Simulation

        spec = cpu_bound("low", seed=2)
        by_name = Simulation.build(
            config=spec.config,
            specs=list(spec.specs),
            loads=list(spec.loads),
            policy="hybrid",
            workload_label=spec.label,
        )
        assert by_name.policy.name == "hybrid"
        assert simulation is not by_name

    def test_monitor_set_policy_accepts_a_name(self):
        from tests.test_determinism_end_to_end import _fresh_simulation

        simulation = _fresh_simulation(seed=2)
        simulation.monitor.set_policy("kubernetes")
        assert simulation.monitor.policy.name == "kubernetes"
