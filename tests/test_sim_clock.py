"""Tests for the simulated clock."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import SimClock


class TestConstruction:
    def test_defaults(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.step == 0
        assert clock.dt == 0.5

    def test_custom_start(self):
        clock = SimClock(dt=1.0, start=10.0)
        assert clock.now == 10.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ClockError):
            SimClock(dt=0.0)
        with pytest.raises(ClockError):
            SimClock(dt=-1.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            SimClock(start=-1.0)


class TestAdvance:
    def test_advance_returns_new_time(self):
        clock = SimClock(dt=0.5)
        assert clock.advance() == 0.5
        assert clock.advance() == 1.0

    def test_step_counter(self):
        clock = SimClock(dt=0.25)
        for _ in range(10):
            clock.advance()
        assert clock.step == 10

    def test_no_floating_point_drift(self):
        # 0.1 is not representable in binary; a naive ``now += dt`` drifts.
        clock = SimClock(dt=0.1)
        for _ in range(10_000):
            clock.advance()
        assert clock.now == pytest.approx(1000.0, abs=1e-9)

    def test_elapsed_since(self):
        clock = SimClock(dt=1.0)
        clock.advance()
        clock.advance()
        assert clock.elapsed_since(0.5) == pytest.approx(1.5)
        assert clock.elapsed_since(5.0) == pytest.approx(-3.0)
