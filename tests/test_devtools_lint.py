"""Tests for the determinism & invariant linter (``repro.devtools``).

Each rule gets positive fixtures (deliberately seeded violations) and
negative fixtures (idiomatic code that must stay clean), plus coverage of
the suppression syntax and a meta-test asserting the real tree lints clean.
"""

import json
from pathlib import Path

from repro.devtools.lint import (
    DEFAULT_PATHS,
    lint_paths,
    lint_source,
    main,
    render_json,
    render_report,
)
from repro.devtools.rules import ALL_RULES, rule_catalog
from repro.devtools.violations import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Logical paths used to exercise each rule's scope.
SIM_PATH = "src/repro/sim/fixture.py"
CLUSTER_PATH = "src/repro/cluster/fixture.py"
NETSIM_PATH = "src/repro/netsim/fixture.py"
CORE_PATH = "src/repro/core/fixture.py"
RNG_PATH = "src/repro/sim/rng.py"
TESTS_PATH = "tests/test_fixture.py"


def rules_of(violations):
    return [v.rule for v in violations]


# ----------------------------------------------------------------------
# DET001 — wall-clock reads
# ----------------------------------------------------------------------
class TestDet001:
    def test_flags_time_time(self):
        src = "import time\n\ndef tick() -> float:\n    return time.time()\n"
        assert "DET001" in rules_of(lint_source(src, SIM_PATH))

    def test_flags_from_import_perf_counter(self):
        src = "from time import perf_counter\n\ndef tick() -> float:\n    return perf_counter()\n"
        assert "DET001" in rules_of(lint_source(src, SIM_PATH))

    def test_flags_aliased_datetime_now(self):
        src = "from datetime import datetime as dt\n\ndef stamp() -> object:\n    return dt.now()\n"
        assert "DET001" in rules_of(lint_source(src, SIM_PATH))

    def test_sim_clock_usage_is_clean(self):
        src = (
            "from repro.sim.clock import SimClock\n\n"
            "def tick(clock: SimClock) -> float:\n    return clock.now\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_tests_area_may_use_wall_clock(self):
        src = "import time\n\ndef test_elapsed():\n    assert time.time() > 0\n"
        assert lint_source(src, TESTS_PATH) == []

    def test_unrelated_now_attribute_is_clean(self):
        src = "def probe(clock) -> float:\n    return clock.now\n"
        # `clock.now` is an attribute read, not a wall-clock call.
        assert "DET001" not in rules_of(lint_source(src, TESTS_PATH))


# ----------------------------------------------------------------------
# DET002 — private randomness
# ----------------------------------------------------------------------
class TestDet002:
    def test_flags_default_rng(self):
        src = "import numpy as np\n\ndef make() -> object:\n    return np.random.default_rng(0)\n"
        assert "DET002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_np_random_seed(self):
        src = "import numpy as np\n\ndef seed() -> None:\n    np.random.seed(0)\n"
        assert "DET002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_legacy_global_draws(self):
        src = "import numpy as np\n\ndef draw() -> float:\n    return float(np.random.uniform())\n"
        assert "DET002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_stdlib_random(self):
        src = "import random\n\ndef draw() -> float:\n    return random.random()\n"
        assert "DET002" in rules_of(lint_source(src, SIM_PATH))

    def test_flags_from_import_stdlib_random(self):
        src = "from random import shuffle\n\ndef mix(xs: list) -> None:\n    shuffle(xs)\n"
        assert "DET002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_rng_module_itself_is_exempt(self):
        src = "import numpy as np\n\ndef make() -> object:\n    return np.random.default_rng(0)\n"
        assert lint_source(src, RNG_PATH) == []

    def test_tests_may_construct_generators(self):
        src = "import numpy as np\n\ndef test_x():\n    rng = np.random.default_rng(1)\n    assert rng\n"
        assert lint_source(src, TESTS_PATH) == []

    def test_injected_generator_usage_is_clean(self):
        src = (
            "import numpy as np\n\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.uniform())\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_seed_sequence_is_safe(self):
        src = "import numpy as np\n\ndef derive(seed: int) -> object:\n    return np.random.SeedSequence(seed)\n"
        assert "DET002" not in rules_of(lint_source(src, CORE_PATH))


# ----------------------------------------------------------------------
# DET003 — iteration over bare sets
# ----------------------------------------------------------------------
class TestDet003:
    def test_flags_for_over_set_call(self):
        src = "def walk(items: list) -> None:\n    for x in set(items):\n        print(x)\n"
        assert "DET003" in rules_of(lint_source(src, SIM_PATH))

    def test_flags_for_over_set_literal(self):
        src = "def walk() -> None:\n    for x in {1, 2, 3}:\n        print(x)\n"
        assert "DET003" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_list_of_set(self):
        src = "def order(items: list) -> list:\n    return list(set(items))\n"
        assert "DET003" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_comprehension_over_set_union(self):
        src = "def pair(a: set, b: set) -> list:\n    return [x for x in a | b]\n"
        # `a | b` on unannotated names is not statically a set, but on
        # literals it is:
        src = "def pair() -> list:\n    return [x for x in {1} | {2}]\n"
        assert "DET003" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_iteration_over_local_set_variable(self):
        src = (
            "def walk(items: list) -> None:\n"
            "    seen = set(items)\n"
            "    for x in seen:\n"
            "        print(x)\n"
        )
        assert "DET003" in rules_of(lint_source(src, SIM_PATH))

    def test_sorted_set_is_clean(self):
        src = "def walk(items: list) -> None:\n    for x in sorted(set(items)):\n        print(x)\n"
        assert lint_source(src, SIM_PATH) == []

    def test_membership_and_len_are_clean(self):
        src = (
            "def stats(items: list) -> int:\n"
            "    names = set(items)\n"
            "    if 'a' in names:\n"
            "        return len(names)\n"
            "    return 0\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_set_comprehension_output_is_clean(self):
        src = "def dedupe(items: list) -> set:\n    return {x for x in set(items)}\n"
        # Draining a set into another set never materialises an order.
        assert "DET003" not in rules_of(lint_source(src, CORE_PATH))

    def test_out_of_scope_area_is_clean(self):
        src = "def walk(items: list) -> None:\n    for x in set(items):\n        print(x)\n"
        assert lint_source(src, TESTS_PATH) == []


# ----------------------------------------------------------------------
# UNIT001 — raw unit-conversion literals
# ----------------------------------------------------------------------
class TestUnit001:
    def test_flags_mib_literal_in_cluster(self):
        src = "def to_mib(n_bytes: float) -> float:\n    return n_bytes / 1048576\n"
        assert "UNIT001" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_1024_in_netsim(self):
        src = "def shares(cores: float) -> int:\n    return int(cores * 1024)\n"
        assert "UNIT001" in rules_of(lint_source(src, NETSIM_PATH))

    def test_flags_mbit_literal(self):
        src = "def to_bits(mbit: float) -> float:\n    return mbit * 1000000\n"
        assert "UNIT001" in rules_of(lint_source(src, NETSIM_PATH))

    def test_units_helpers_are_clean(self):
        src = (
            "from repro.units import MIB\n\n"
            "def to_mib(n_bytes: float) -> float:\n    return n_bytes / MIB\n"
        )
        assert lint_source(src, CLUSTER_PATH) == []

    def test_other_literals_are_clean(self):
        src = "def cap() -> float:\n    return 512.0\n"
        assert lint_source(src, CLUSTER_PATH) == []

    def test_rule_is_scoped_to_cluster_and_netsim(self):
        src = "def to_mib(n_bytes: float) -> float:\n    return n_bytes / 1048576\n"
        assert lint_source(src, CORE_PATH) == []


# ----------------------------------------------------------------------
# API001 — complete annotations on the public surface
# ----------------------------------------------------------------------
class TestApi001:
    def test_flags_missing_return_type(self):
        src = "def speed(mbit: float):\n    return mbit * 2\n"
        assert "API001" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_unannotated_parameter(self):
        src = "def speed(mbit) -> float:\n    return mbit * 2\n"
        assert "API001" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_unannotated_method_kwargs(self):
        src = (
            "class Policy:\n"
            "    def decide(self, view: object, **extras) -> list:\n"
            "        return []\n"
        )
        assert "API001" in rules_of(lint_source(src, CORE_PATH))

    def test_init_needs_no_return_annotation(self):
        src = "class Clock:\n    def __init__(self, dt: float):\n        self.dt = dt\n"
        assert lint_source(src, SIM_PATH) == []

    def test_private_and_nested_defs_are_exempt(self):
        src = (
            "def _helper(x):\n"
            "    return x\n\n"
            "def public(x: int) -> int:\n"
            "    def inner(y):\n"
            "        return y\n"
            "    return inner(x)\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_fully_annotated_method_is_clean(self):
        src = (
            "class Policy:\n"
            "    def decide(self, view: object, *, dry_run: bool = False) -> list[str]:\n"
            "        return []\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_rule_is_scoped_to_src(self):
        src = "def helper(x):\n    return x\n"
        assert lint_source(src, TESTS_PATH) == []


# ----------------------------------------------------------------------
# API002 — no run_experiment imports inside src/repro
# ----------------------------------------------------------------------
class TestApi002:
    def test_flags_import_from_runner(self):
        src = "from repro.experiments.runner import run_experiment\n"
        assert "API002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_import_from_package(self):
        src = "from repro.experiments import run_experiment\n"
        assert "API002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_import_from_top_level(self):
        src = "from repro import run_experiment\n"
        assert "API002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_relative_import(self):
        src = "from .runner import run_experiment\n"
        assert "API002" in rules_of(
            lint_source(src, "src/repro/experiments/fixture.py")
        )

    def test_runner_module_itself_is_exempt(self):
        src = "from repro.experiments.runner import run_experiment\n"
        assert lint_source(src, "src/repro/experiments/runner.py") == []

    def test_tests_and_examples_may_import_the_shim(self):
        src = "from repro import run_experiment\n"
        assert lint_source(src, TESTS_PATH) == []
        assert "API002" not in rules_of(
            lint_source(src, "examples/fixture.py")
        )

    def test_runspec_import_is_clean(self):
        src = "from repro.experiments.spec import RunSpec, SweepSpec\n"
        assert lint_source(src, CORE_PATH) == []

    def test_sibling_names_from_runner_are_clean(self):
        src = "from repro.experiments.runner import Simulation\n"
        assert lint_source(src, CORE_PATH) == []

    def test_suppression_comment_is_honoured(self):
        src = (
            "from repro.experiments.runner import run_experiment  "
            "# lint: disable=API002(back-compat re-export)\n"
        )
        assert lint_source(src, CORE_PATH) == []


# ----------------------------------------------------------------------
# OBS001 — no time/datetime imports inside the telemetry package
# ----------------------------------------------------------------------
class TestObs001:
    TELEMETRY_PATH = "src/repro/telemetry/fixture.py"

    def test_flags_import_time(self):
        src = "import time\n"
        assert "OBS001" in rules_of(lint_source(src, self.TELEMETRY_PATH))

    def test_flags_from_time_import(self):
        # Stronger than DET001: the import alone is a violation, even with
        # no call anywhere in the file.
        src = "from time import perf_counter\n"
        assert "OBS001" in rules_of(lint_source(src, self.TELEMETRY_PATH))

    def test_flags_import_datetime(self):
        src = "import datetime as dt\n"
        assert "OBS001" in rules_of(lint_source(src, self.TELEMETRY_PATH))

    def test_other_imports_are_clean(self):
        src = "from collections import deque\nimport json\n"
        assert lint_source(src, self.TELEMETRY_PATH) == []

    def test_rule_is_scoped_to_telemetry(self):
        # Elsewhere in src/ a bare import is DET001's business (calls only),
        # so the import by itself stays clean.
        src = "import time\n"
        assert "OBS001" not in rules_of(lint_source(src, SIM_PATH))
        assert "OBS001" not in rules_of(lint_source(src, TESTS_PATH))


# ----------------------------------------------------------------------
# OBS002 — registry.capture() only from the telemetry sampling layer
# ----------------------------------------------------------------------
class TestObs002:
    CAPTURE = "def flush(registry, now: float) -> None:\n    registry.capture(now)\n"

    def test_flags_direct_capture_in_src(self):
        assert "OBS002" in rules_of(lint_source(self.CAPTURE, CORE_PATH))
        assert "OBS002" in rules_of(lint_source(self.CAPTURE, SIM_PATH))

    def test_flags_attribute_receivers_named_registry(self):
        src = "def flush(self, now: float) -> None:\n    self.registry.capture(now)\n"
        assert "OBS002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_sampling_layer_is_allowed(self):
        assert "OBS002" not in rules_of(
            lint_source(self.CAPTURE, "src/repro/telemetry/hub.py")
        )
        assert "OBS002" not in rules_of(
            lint_source(self.CAPTURE, "src/repro/telemetry/sampling.py")
        )

    def test_tests_area_is_out_of_scope(self):
        assert "OBS002" not in rules_of(lint_source(self.CAPTURE, TESTS_PATH))

    def test_other_capture_receivers_are_clean(self):
        # `.capture` on a non-registry receiver (e.g. a pane or shard) is
        # someone else's method; only registry-shaped receivers are gated.
        src = "def snap(pane, now: float) -> None:\n    pane.capture(now)\n"
        assert "OBS002" not in rules_of(lint_source(src, CORE_PATH))

    def test_reasoned_suppression_is_honoured(self):
        src = (
            "def flush(registry: object, now: float) -> None:\n"
            "    registry.capture(now)  # lint: disable=OBS002(bench primes a synthetic registry)\n"
        )
        assert lint_source(src, CORE_PATH) == []


# ----------------------------------------------------------------------
# SAN001 — mutable class-level / default-argument containers
# ----------------------------------------------------------------------
class TestSan001:
    def test_flags_class_level_list_literal(self):
        src = "class Cache:\n    entries = []\n"
        assert "SAN001" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_class_level_dict_call(self):
        src = "class Registry:\n    by_name: dict = dict()\n"
        assert "SAN001" in rules_of(lint_source(src, SIM_PATH))

    def test_flags_class_level_defaultdict(self):
        src = "import collections\n\nclass Index:\n    rows = collections.defaultdict(list)\n"
        assert "SAN001" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_mutable_default_argument(self):
        src = "def collect(into: list = []) -> list:\n    return into\n"
        assert "SAN001" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_default_factory_field_is_clean(self):
        src = (
            "import dataclasses\n\n"
            "@dataclasses.dataclass\n"
            "class Holder:\n"
            "    xs: list = dataclasses.field(default_factory=list)\n"
        )
        assert "SAN001" not in rules_of(lint_source(src, CLUSTER_PATH))

    def test_immutable_defaults_and_init_state_are_clean(self):
        src = (
            "class Node:\n"
            "    KINDS = (\"cpu\", \"memory\")\n\n"
            "    def __init__(self) -> None:\n"
            "        self.children: list = []\n"
        )
        assert "SAN001" not in rules_of(lint_source(src, SIM_PATH))

    def test_rule_is_scoped_to_cluster_platform_sim(self):
        src = "class Cache:\n    entries = []\n"
        assert "SAN001" not in rules_of(lint_source(src, CORE_PATH))
        assert "SAN001" not in rules_of(lint_source(src, TESTS_PATH))


# ----------------------------------------------------------------------
# SAN002 — float equality on resource quantities
# ----------------------------------------------------------------------
class TestSan002:
    def test_flags_equality_on_suffixed_name(self):
        src = "def same(cpu_request: float, other: float) -> bool:\n    return cpu_request == other\n"
        assert "SAN002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_inequality_on_attribute(self):
        src = "def moved(a: object, b: object) -> bool:\n    return a.net_rate != b.net_rate\n"
        assert "SAN002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_bare_resource_name(self):
        src = "def full(cpu: float, cap: float) -> bool:\n    return cpu == cap\n"
        assert "SAN002" in rules_of(lint_source(src, NETSIM_PATH))

    def test_same_quantity_helper_is_clean(self):
        src = (
            "from repro.units import same_quantity\n\n"
            "def same(cpu_request: float, other: float) -> bool:\n"
            "    return same_quantity(cpu_request, other)\n"
        )
        assert "SAN002" not in rules_of(lint_source(src, CORE_PATH))

    def test_non_resource_names_are_clean(self):
        src = "def match(name: str, other: str) -> bool:\n    return name == other\n"
        assert "SAN002" not in rules_of(lint_source(src, CORE_PATH))

    def test_ordering_comparisons_are_clean(self):
        src = "def over(cpu_request: float, cap: float) -> bool:\n    return cpu_request > cap\n"
        assert "SAN002" not in rules_of(lint_source(src, CORE_PATH))

    def test_units_module_and_tests_are_exempt(self):
        src = "def same(cpu_request: float, other: float) -> bool:\n    return cpu_request == other\n"
        assert "SAN002" not in rules_of(lint_source(src, "src/repro/units.py"))
        assert "SAN002" not in rules_of(lint_source(src, TESTS_PATH))


# ----------------------------------------------------------------------
# SAN003 — frozen-dataclass mutation outside the defining module
# ----------------------------------------------------------------------
class TestSan003:
    def test_flags_setattr_on_foreign_instance(self):
        src = "def poke(view: object) -> None:\n    object.__setattr__(view, \"cpu\", 1.0)\n"
        assert "SAN003" in rules_of(lint_source(src, CORE_PATH))

    def test_post_init_self_mutation_is_clean(self):
        src = (
            "class Frozen:\n"
            "    def __post_init__(self) -> None:\n"
            "        object.__setattr__(self, \"total\", 3.0)\n"
        )
        assert "SAN003" not in rules_of(lint_source(src, CORE_PATH))

    def test_plain_setattr_builtin_is_clean(self):
        src = "def poke(view: object) -> None:\n    setattr(view, \"label\", \"x\")\n"
        assert "SAN003" not in rules_of(lint_source(src, CORE_PATH))

    def test_tests_area_is_exempt(self):
        src = "def poke(view: object) -> None:\n    object.__setattr__(view, \"cpu\", 1.0)\n"
        assert "SAN003" not in rules_of(lint_source(src, TESTS_PATH))


# ----------------------------------------------------------------------
# UNIT002 — unit-suffix dataflow
# ----------------------------------------------------------------------
class TestUnit002:
    def test_flags_cross_unit_assignment(self):
        src = "def f(size_mb: float) -> float:\n    rate_mbps = size_mb\n    return rate_mbps\n"
        assert "UNIT002" in rules_of(lint_source(src, NETSIM_PATH))

    def test_flags_cross_unit_keyword_argument(self):
        src = "def f(send: object, size_mb: float) -> None:\n    send(rate_mbps=size_mb)\n"
        assert "UNIT002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_cross_unit_positional_to_local_function(self):
        src = (
            "def push(rate_mbps: float) -> None:\n    pass\n\n"
            "def go(size_mb: float) -> None:\n    push(size_mb)\n"
        )
        assert "UNIT002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_flags_cross_unit_arithmetic(self):
        src = "def f(size_mb: float, rate_mbps: float) -> float:\n    return size_mb + rate_mbps\n"
        assert "UNIT002" in rules_of(lint_source(src, CORE_PATH))

    def test_flags_cores_vs_shares(self):
        src = "def f(cpu_cores: float) -> float:\n    cpu_shares = cpu_cores\n    return cpu_shares\n"
        assert "UNIT002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_same_unit_flow_is_clean(self):
        src = (
            "def f(size_mb: float, extra_mb: float) -> float:\n"
            "    total_mb = size_mb\n"
            "    return total_mb + extra_mb\n"
        )
        assert "UNIT002" not in rules_of(lint_source(src, NETSIM_PATH))

    def test_per_second_segments_are_neutral(self):
        src = (
            "def f(burst_mb: float) -> float:\n"
            "    budget_mb_per_s = burst_mb\n"
            "    return budget_mb_per_s\n"
        )
        assert "UNIT002" not in rules_of(lint_source(src, CLUSTER_PATH))

    def test_converted_values_are_clean(self):
        src = (
            "from repro.units import mb_to_mbit\n\n"
            "def f(size_mb: float) -> float:\n"
            "    rate_mbits = mb_to_mbit(size_mb)\n"
            "    return rate_mbits\n"
        )
        assert "UNIT002" not in rules_of(lint_source(src, NETSIM_PATH))

    def test_unsuffixed_names_are_clean(self):
        src = "def f(amount: float) -> float:\n    rate_mbps = amount\n    return rate_mbps\n"
        assert "UNIT002" not in rules_of(lint_source(src, CORE_PATH))

    def test_units_module_is_exempt(self):
        src = "def f(size_mb: float) -> float:\n    rate_mbps = size_mb\n    return rate_mbps\n"
        assert "UNIT002" not in rules_of(lint_source(src, "src/repro/units.py"))


# ----------------------------------------------------------------------
# Suppression syntax
# ----------------------------------------------------------------------
class TestSuppressions:
    DIRTY = "import numpy as np\n\ndef make() -> object:\n    return np.random.default_rng(0)"

    def test_reasoned_suppression_silences_the_rule(self):
        src = self.DIRTY + "  # lint: disable=DET002(doc fixture, not simulator state)\n"
        assert lint_source(src, CLUSTER_PATH) == []

    def test_suppression_without_reason_is_reported_and_ineffective(self):
        src = self.DIRTY + "  # lint: disable=DET002\n"
        rules = rules_of(lint_source(src, CLUSTER_PATH))
        assert "LINT001" in rules and "DET002" in rules

    def test_empty_reason_is_reported(self):
        src = self.DIRTY + "  # lint: disable=DET002()\n"
        rules = rules_of(lint_source(src, CLUSTER_PATH))
        assert "LINT001" in rules and "DET002" in rules

    def test_suppression_of_other_rule_does_not_silence(self):
        src = self.DIRTY + "  # lint: disable=DET001(wrong rule)\n"
        assert "DET002" in rules_of(lint_source(src, CLUSTER_PATH))

    def test_multiple_rules_on_one_line(self):
        src = (
            "import numpy as np\n\n"
            "def make() -> object:\n"
            "    return list(set(np.random.default_rng(0).integers(0, 9, 4)))"
            "  # lint: disable=DET002(fixture), DET003(fixture)\n"
        )
        assert lint_source(src, CLUSTER_PATH) == []

    def test_parse_suppressions_maps_lines(self):
        suppressed, problems = parse_suppressions(
            "x = 1\ny = 2  # lint: disable=DET001(known quirk)\n", "src/repro/sim/x.py"
        )
        assert suppressed == {2: frozenset({"DET001"})}
        assert problems == []


# ----------------------------------------------------------------------
# Engine, output formats, CLI
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_becomes_lint002(self):
        violations = lint_source("def broken(:\n", SIM_PATH)
        assert rules_of(violations) == ["LINT002"]

    def test_json_report_shape(self):
        violations = lint_source("import time\n\ndef t() -> float:\n    return time.time()\n", SIM_PATH)
        payload = json.loads(render_json(violations, files_checked=1))
        assert payload["files_checked"] == 1
        assert payload["violation_count"] == len(violations) == 1
        entry = payload["violations"][0]
        assert entry["rule"] == "DET001"
        assert entry["path"] == SIM_PATH
        assert entry["line"] == 4

    def test_text_report_mentions_rule_mix(self):
        violations = lint_source("import time\n\ndef t() -> float:\n    return time.time()\n", SIM_PATH)
        report = render_report(violations, files_checked=1)
        assert "DET001=1" in report
        assert f"{SIM_PATH}:4" in report

    def test_clean_report(self):
        assert "0 violations" in render_report([], files_checked=3)

    def test_every_rule_has_id_and_summary(self):
        catalog = rule_catalog()
        assert set(catalog) == {
            "DET001",
            "DET002",
            "DET003",
            "UNIT001",
            "UNIT002",
            "API001",
            "API002",
            "OBS001",
            "OBS002",
            "SAN001",
            "SAN002",
            "SAN003",
        }
        assert all(summary for summary in catalog.values())
        assert len(ALL_RULES) == 12


class TestCli:
    def _write(self, root: Path, rel: str, source: str) -> Path:
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/sim/ok.py", "X: int = 1\n")
        assert main(["src", "--root", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "src/repro/cluster/bad.py",
            "import numpy as np\n\ndef make() -> object:\n    return np.random.default_rng(0)\n",
        )
        assert main(["src", "--root", str(tmp_path)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["no-such-dir", "--root", str(tmp_path)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_format_flag(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/sim/ok.py", "X: int = 1\n")
        assert main(["src", "--root", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violation_count"] == 0

    def test_list_rules_flag(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "UNIT001", "API001"):
            assert rule_id in out

    def test_flow_flag_runs_detflow_over_the_shared_parse(self, tmp_path, capsys):
        # One tree, one parse: the per-file rules and the DetFlow taint
        # pass both fire from the same invocation.
        self._write(
            tmp_path,
            "src/repro/obs/export.py",
            "def span_to_json_line(span: dict) -> str:\n    return '{}'\n",
        )
        self._write(
            tmp_path,
            "src/repro/analysis/feed.py",
            "import time\n"
            "from repro.obs.export import span_to_json_line\n"
            "\n"
            "\n"
            "def emit(span: dict) -> str:\n"
            "    span['ts'] = time.time()  # lint: disable=DET001(fixture)\n"
            "    return span_to_json_line(span)\n",
        )
        assert main(["src", "--root", str(tmp_path), "--flow"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out  # the taint pass saw the suppressed-per-file source

    def test_flow_flag_accepts_lint_suppressions_without_flow_findings(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/sim/ok.py", "X: int = 1\n")
        assert main(["src", "--root", str(tmp_path), "--flow"]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The real tree must lint clean (the CI gate, asserted in-process)
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_default_paths_lint_clean(self):
        violations, files_checked = lint_paths(list(DEFAULT_PATHS), root=REPO_ROOT)
        assert files_checked > 100  # the walker actually found the tree
        assert violations == [], "\n" + "\n".join(v.render() for v in violations)
