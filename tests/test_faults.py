"""Tests for dynamic fleet changes and failure injection."""

import pytest

from repro import HyScaleCpu, KubernetesHpa, Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig
from repro.errors import ClusterError
from repro.workloads import CPU_BOUND, ConstantLoad, ServiceLoad


def build_sim(policy=None, worker_nodes=4, rate=6.0, seed=0):
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=worker_nodes), seed=seed)
    specs = [MicroserviceSpec(name="svc", min_replicas=2, max_replicas=8)]
    loads = [ServiceLoad("svc", CPU_BOUND, ConstantLoad(rate))]
    return Simulation.build(
        config=config, specs=specs, loads=loads, policy=policy or HyScaleCpu()
    )


class TestScheduling:
    def test_negative_time_rejected(self):
        sim = build_sim()
        with pytest.raises(ClusterError):
            sim.faults.schedule_crash(-1.0, "node-00")
        with pytest.raises(ClusterError):
            sim.faults.schedule_add(-1.0, "node-99")

    def test_pending_counts_down(self):
        sim = build_sim()
        sim.faults.schedule_crash(5.0, "node-00")
        assert sim.faults.pending == 1
        sim.engine.run_for(10.0)
        assert sim.faults.pending == 0

    def test_crash_unknown_node_raises(self):
        sim = build_sim()
        sim.faults.schedule_crash(1.0, "ghost")
        with pytest.raises(ClusterError):
            sim.engine.run_for(5.0)


class TestCrash:
    def test_crash_removes_node_and_fails_requests(self):
        sim = build_sim(rate=10.0)
        victim = sim.client.node_name_of(
            sim.cluster.service("svc").active_replicas()[0].container_id
        )
        sim.faults.schedule_crash(20.0, victim)
        sim.engine.run_for(30.0)
        assert victim not in sim.cluster.nodes
        assert sim.faults.log.crashes == [(20.0, victim)]
        # The in-flight requests on the dead machine were lost as removals.
        assert sim.collector.total_removal_failures >= sim.faults.log.lost_requests > 0

    def test_policy_restores_min_replicas_after_crash(self):
        sim = build_sim(policy=KubernetesHpa())
        victim = sim.client.node_name_of(
            sim.cluster.service("svc").active_replicas()[0].container_id
        )
        sim.faults.schedule_crash(10.0, victim)
        sim.engine.run_for(60.0)
        assert sim.cluster.service("svc").replica_count >= 2

    def test_service_keeps_serving_through_crash(self):
        sim = build_sim(rate=8.0)
        victim = sim.client.node_name_of(
            sim.cluster.service("svc").active_replicas()[0].container_id
        )
        sim.faults.schedule_crash(30.0, victim)
        summary = sim.run(90.0)
        # Most traffic still succeeds despite losing a machine mid-run.
        assert summary.availability > 0.9
        assert summary.completed > 0

    def test_capacity_invariant_survives_crash(self):
        sim = build_sim(rate=10.0)
        sim.faults.schedule_crash(15.0, "node-03")
        sim.engine.run_for(60.0)
        for node in sim.cluster.nodes.values():
            assert node.allocated().fits_within(node.capacity, tolerance=1e-6)


class TestAddition:
    def test_added_node_becomes_placement_target(self):
        # Tiny cluster under heavy load: the new machine should get used.
        sim = build_sim(worker_nodes=2, rate=16.0)
        sim.faults.schedule_add(20.0, "fresh-node")
        sim.engine.run_for(120.0)
        assert "fresh-node" in sim.cluster.nodes
        assert sim.faults.log.additions == [(20.0, "fresh-node")]
        assert sim.cluster.node("fresh-node").containers, "new machine never used"

    def test_added_node_custom_capacity(self):
        sim = build_sim()
        sim.faults.schedule_add(5.0, "big-node", capacity=ResourceVector(16.0, 32768.0, 10000.0))
        sim.engine.run_for(10.0)
        assert sim.cluster.node("big-node").capacity.cpu == 16.0

    def test_added_node_is_monitored(self):
        sim = build_sim(worker_nodes=2, rate=16.0)
        sim.faults.schedule_add(10.0, "fresh-node")
        sim.engine.run_for(60.0)
        assert "fresh-node" in sim.monitor.node_managers

    def test_crash_then_replace(self):
        sim = build_sim(rate=8.0)
        sim.faults.schedule_crash(20.0, "node-01")
        sim.faults.schedule_add(40.0, "replacement")
        summary = sim.run(120.0)
        assert "node-01" not in sim.cluster.nodes
        assert "replacement" in sim.cluster.nodes
        assert summary.availability > 0.9
