"""Tests for the Kubernetes memory-metric and multi-metric variants."""

import pytest

from repro.core.actions import AddReplica
from repro.core.kubernetes_multi import KubernetesMemoryHpa, KubernetesMultiMetricHpa
from repro.errors import PolicyError

from tests.conftest import make_replica, make_service, make_view


class TestMemoryHpa:
    def test_scales_on_memory(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_usage=0.01, mem_limit=512.0, mem_usage=512.0),),
                ),
            )
        )
        adds = [a for a in KubernetesMemoryHpa().decide(view) if isinstance(a, AddReplica)]
        # mem util 1.0 / target 0.5 -> 2 desired.
        assert len(adds) == 1

    def test_ignores_cpu(self):
        view = make_view(
            services=(
                make_service(
                    "svc",
                    (make_replica("a", cpu_usage=4.0, mem_limit=512.0, mem_usage=256.0),),
                ),
            )
        )
        assert KubernetesMemoryHpa().decide(view) == []


class TestMultiMetric:
    def hot_cpu_cold_mem(self):
        return make_service(
            "svc",
            (make_replica("a", cpu_request=0.5, cpu_usage=1.0,
                          mem_limit=512.0, mem_usage=100.0),),
        )

    def cold_cpu_hot_mem(self):
        return make_service(
            "svc",
            (make_replica("a", cpu_request=0.5, cpu_usage=0.25,
                          mem_limit=512.0, mem_usage=450.0),),
        )

    def test_largest_metric_wins(self):
        """The paper: 'only the metric with the largest scale is chosen'."""
        policy = KubernetesMultiMetricHpa(metrics=("cpu", "memory"))
        # CPU says 4 replicas, memory says 1: desired = 4.
        assert policy.desired_replicas(self.hot_cpu_cold_mem()) == 4
        # CPU says 1, memory says ceil(0.879/0.5)=2: desired = 2.
        assert policy.desired_replicas(self.cold_cpu_hot_mem()) == 2

    def test_catches_bottlenecks_plain_hpa_misses(self):
        view = make_view(services=(self.cold_cpu_hot_mem(),))
        from repro.core.kubernetes import KubernetesHpa

        assert KubernetesHpa().decide(view) == []  # CPU-only is blind
        adds = [
            a
            for a in KubernetesMultiMetricHpa().decide(view)
            if isinstance(a, AddReplica)
        ]
        assert len(adds) == 1

    def test_tolerance_requires_all_metrics_quiet(self):
        policy = KubernetesMultiMetricHpa()
        quiet = make_service(
            "svc",
            (make_replica("a", cpu_request=1.0, cpu_usage=0.5,
                          mem_limit=512.0, mem_usage=256.0),),
        )
        assert policy.within_tolerance(quiet)
        assert not policy.within_tolerance(self.cold_cpu_hot_mem())

    def test_metric_attribute_restored_after_calls(self):
        policy = KubernetesMultiMetricHpa(metrics=("cpu", "memory"))
        policy.desired_replicas(self.hot_cpu_cold_mem())
        assert policy.metric == "cpu"

    def test_validation(self):
        with pytest.raises(PolicyError):
            KubernetesMultiMetricHpa(metrics=())
        with pytest.raises(PolicyError):
            KubernetesMultiMetricHpa(metrics=("cpu", "gpu"))

    def test_still_horizontal_only(self):
        from repro.core.actions import VerticalScale

        view = make_view(services=(self.cold_cpu_hot_mem(),))
        actions = KubernetesMultiMetricHpa().decide(view)
        assert not any(isinstance(a, VerticalScale) for a in actions)

    def test_names(self):
        assert KubernetesMemoryHpa().name == "kubernetes-mem"
        assert KubernetesMultiMetricHpa().name == "kubernetes-multi"
