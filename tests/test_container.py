"""Tests for the simulated container: scheduling, memory, lifecycle."""

import pytest

from repro.cluster.container import Container, ContainerState
from repro.config import OverheadModel
from repro.errors import ContainerStateError
from repro.workloads.requests import FailureReason, Request, RequestState

from tests.conftest import make_container


def make_request(cpu=0.5, mem=10.0, net=0.0, timeout=30.0) -> Request:
    return Request(
        service="svc", arrival_time=0.0, cpu_work=cpu, mem_footprint=mem, net_mbits=net, timeout=timeout
    )


class TestLifecycle:
    def test_boot_delay(self, overheads):
        container = make_container(boot=2.0, overheads=overheads)
        assert container.state is ContainerState.PENDING
        assert not container.is_serving
        container.tick_boot(1.0)
        assert container.state is ContainerState.PENDING
        container.tick_boot(1.0)
        assert container.state is ContainerState.RUNNING

    def test_no_boot_starts_running(self, overheads):
        assert make_container(overheads=overheads).state is ContainerState.RUNNING

    def test_accept_rejected_while_pending(self, overheads):
        container = make_container(boot=5.0, overheads=overheads)
        with pytest.raises(ContainerStateError):
            container.accept(make_request(), 0.0)

    def test_terminate_fails_inflight_as_removal(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request()
        container.accept(request, 0.0)
        casualties = container.terminate(5.0)
        assert casualties == [request]
        assert request.failure_reason is FailureReason.REMOVAL
        assert container.state is ContainerState.STOPPED

    def test_oom_terminate_state(self, overheads):
        container = make_container(overheads=overheads)
        container.terminate(1.0, oom=True)
        assert container.state is ContainerState.OOM_KILLED

    def test_double_terminate_rejected(self, overheads):
        container = make_container(overheads=overheads)
        container.terminate(1.0)
        with pytest.raises(ContainerStateError):
            container.terminate(2.0)

    def test_invalid_allocations_rejected(self):
        with pytest.raises(ContainerStateError):
            Container("s", 0, cpu_request=-1, mem_limit=512, net_rate=0)
        with pytest.raises(ContainerStateError):
            Container("s", 0, cpu_request=1, mem_limit=0, net_rate=0)
        with pytest.raises(ContainerStateError):
            Container("s", 0, cpu_request=1, mem_limit=512, net_rate=0, max_concurrency=0)

    def test_cpu_shares_follow_request(self, overheads):
        container = make_container(cpu=2.0, overheads=overheads)
        assert container.cpu_shares == 2048


class TestCompute:
    def test_progresses_requests(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=1.0, net=0.0)
        container.accept(request, 0.0)
        container.advance_compute(granted_cores=2.0, dt=0.5, contention_factor=1.0)
        assert request.cpu_done == pytest.approx(1.0)

    def test_processor_sharing_equalizes(self, overheads):
        container = make_container(overheads=overheads)
        requests = [make_request(cpu=10.0) for _ in range(4)]
        for request in requests:
            container.accept(request, 0.0)
        container.advance_compute(granted_cores=4.0, dt=1.0, contention_factor=1.0)
        for request in requests:
            assert request.cpu_done == pytest.approx(1.0)

    def test_sliding_window_uses_leftover_budget(self, overheads):
        # 8 tiny requests, concurrency 2: all should finish in one fat step.
        container = make_container(concurrency=2, overheads=overheads)
        requests = [make_request(cpu=0.1, net=0.0) for _ in range(8)]
        for request in requests:
            container.accept(request, 0.0)
        container.advance_compute(granted_cores=4.0, dt=1.0, contention_factor=1.0)
        assert all(r.cpu_remaining == 0 for r in requests)

    def test_contention_slows_progress(self, overheads):
        fast = make_container(overheads=overheads)
        slow = make_container(overheads=overheads)
        r1, r2 = make_request(cpu=10.0), make_request(cpu=10.0)
        fast.accept(r1, 0.0)
        slow.accept(r2, 0.0)
        fast.advance_compute(2.0, 1.0, contention_factor=1.0)
        slow.advance_compute(2.0, 1.0, contention_factor=1.17)
        assert r2.cpu_done == pytest.approx(r1.cpu_done / 1.17)

    def test_swap_slows_progress(self, overheads):
        container = make_container(mem=100.0, overheads=overheads)  # base 100 fills it
        request = make_request(cpu=10.0, mem=100.0)
        container.accept(request, 0.0)
        assert container.is_swapping
        container.advance_compute(2.0, 1.0, 1.0)
        # swap_slowdown = 0.5 in the test overheads
        assert request.cpu_done == pytest.approx(1.0)

    def test_usage_reflects_grant_spent(self, overheads):
        container = make_container(overheads=overheads)
        container.accept(make_request(cpu=100.0), 0.0)
        container.advance_compute(3.0, 1.0, 1.0)
        assert container.cpu_usage == pytest.approx(3.0)

    def test_idle_container_reports_background_only(self):
        overheads = OverheadModel(container_background_cpu=0.05)
        container = make_container(overheads=overheads)
        container.advance_compute(2.0, 1.0, 1.0)
        assert container.cpu_usage == pytest.approx(0.05)

    def test_invalid_grant_rejected(self, overheads):
        container = make_container(overheads=overheads)
        with pytest.raises(ContainerStateError):
            container.advance_compute(-1.0, 1.0, 1.0)
        with pytest.raises(ContainerStateError):
            container.advance_compute(1.0, 0.0, 1.0)
        with pytest.raises(ContainerStateError):
            container.advance_compute(1.0, 1.0, 0.9)


class TestConcurrencyWindow:
    def test_active_set_bounded(self, overheads):
        container = make_container(concurrency=3, overheads=overheads)
        for _ in range(5):
            container.accept(make_request(), 0.0)
        assert len(container.active_requests()) == 3
        assert len(container.queued_requests()) == 2

    def test_queued_requests_hold_no_memory(self, overheads):
        container = make_container(concurrency=2, overheads=overheads)
        for _ in range(6):
            container.accept(make_request(mem=100.0), 0.0)
        # base 100 + 2 active x 25 (quarter ramp at admission)
        assert container.memory_working_set() == pytest.approx(150.0)


class TestMemory:
    def test_working_set_includes_base(self, overheads):
        container = make_container(overheads=overheads)
        assert container.memory_working_set() == pytest.approx(100.0)

    def test_swapping_flag(self, overheads):
        container = make_container(mem=120.0, overheads=overheads)
        assert not container.is_swapping
        container.accept(make_request(mem=200.0), 0.0)  # +50 resident at admission
        assert container.is_swapping

    def test_oom_threshold(self, overheads):
        container = make_container(mem=110.0, overheads=overheads)
        assert not container.over_oom_threshold
        for _ in range(4):
            container.accept(make_request(mem=200.0), 0.0)  # +50 each
        # working set 300 > 2 x 110
        assert container.over_oom_threshold


class TestNetwork:
    def test_transmits_after_cpu_phase(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=0.0, net=10.0)
        container.accept(request, 0.0)
        assert container.net_demand(1.0) == pytest.approx(10.0)
        container.advance_network(10.0, 1.0)
        assert request.net_remaining == 0.0
        assert container.net_usage == pytest.approx(10.0)

    def test_cpu_phase_requests_offer_no_network(self, overheads):
        container = make_container(overheads=overheads)
        container.accept(make_request(cpu=5.0, net=10.0), 0.0)
        assert container.net_demand(1.0) == 0.0

    def test_net_demand_capped_by_cpu_headroom(self):
        overheads = OverheadModel(net_cpu_per_mbit=0.01, container_background_cpu=0.0)
        container = make_container(overheads=overheads)
        request = make_request(cpu=0.0, net=1000.0)
        container.accept(request, 0.0)
        container.advance_compute(granted_cores=1.0, dt=1.0, contention_factor=1.0)
        # headroom 1 core / 0.01 per Mbit = 100 Mbit/s max
        assert container.net_demand(1.0) == pytest.approx(100.0)

    def test_tx_counts_toward_cpu_usage(self):
        overheads = OverheadModel(net_cpu_per_mbit=0.01)
        container = make_container(overheads=overheads)
        container.accept(make_request(cpu=0.0, net=50.0), 0.0)
        container.advance_compute(4.0, 1.0, 1.0)
        container.advance_network(50.0, 1.0)
        assert container.cpu_usage >= 0.5  # 50 Mbit/s x 0.01


class TestSettlement:
    def test_completion(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=0.5, net=0.0)
        container.accept(request, 0.0)
        container.advance_compute(4.0, 1.0, 1.0)
        container.settle_requests(1.0)
        assert request.state is RequestState.SUCCEEDED
        assert container.total_completed == 1
        assert container.drain_finished() == [request]
        assert container.drain_finished() == []  # drained once

    def test_timeout_is_connection_failure(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(cpu=1000.0, timeout=5.0)
        container.accept(request, 0.0)
        container.settle_requests(5.0)
        assert request.failure_reason is FailureReason.CONNECTION
        assert container.total_failed == 1

    def test_mem_usage_updated_on_settle(self, overheads):
        container = make_container(overheads=overheads)
        container.accept(make_request(cpu=100.0, mem=200.0), 0.0)
        container.settle_requests(1.0)
        assert container.mem_usage > 100.0
