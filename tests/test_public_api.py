"""Public-API quality gates.

A downstream user sees ``repro`` and its subpackage ``__all__`` lists.
These tests keep that surface importable, documented, and free of
accidental omissions — the kind of rot integration tests don't notice.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = (
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.dockersim",
    "repro.netsim",
    "repro.platform",
    "repro.core",
    "repro.obs",
    "repro.sanitizer",
    "repro.telemetry",
    "repro.workloads",
    "repro.metrics",
    "repro.experiments",
    "repro.analysis",
    "repro.parallel",
    "repro.engine_core",
)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} missing docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_objects_documented(module_name):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(module_name)
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{module_name}.{name} is public but undocumented"
            )


def test_top_level_covers_the_paper():
    """The names a paper reader would look for are one import away."""
    import repro

    for name in (
        "KubernetesHpa",
        "NetworkHpa",
        "HyScaleCpu",
        "HyScaleCpuMem",
        "Simulation",
        "SimulationConfig",
        "RunSummary",
    ):
        assert name in repro.__all__


def test_top_level_covers_the_decision_surface():
    """Types a policy author or trace reader needs are one import away."""
    import repro

    for name in (
        "ClusterView",
        "ScalingAction",
        "ScalingEvent",
        "ScalingEventLog",
        "TimelinePoint",
        "Tracer",
        "NullTracer",
        "DecisionTracer",
        "PhaseProfiler",
        "resolve_policy",
    ):
        assert name in repro.__all__, f"repro.__all__ missing {name!r}"
        assert hasattr(repro, name)


def test_top_level_covers_the_engine_surface():
    """The engine-backend selection surface is one import away."""
    import repro

    for name in (
        "ClusterState",
        "ResourceGrants",
        "resolve_backend",
        "register_backend",
        "registered_backends",
    ):
        assert name in repro.__all__, f"repro.__all__ missing {name!r}"
        assert hasattr(repro, name)


def test_top_level_covers_the_sweep_surface():
    """The run/sweep description and execution types are one import away."""
    import repro

    for name in (
        "RunSpec",
        "SweepSpec",
        "SweepExecutor",
        "SweepResult",
        "ShardCache",
        "ShardError",
    ):
        assert name in repro.__all__, f"repro.__all__ missing {name!r}"
        assert hasattr(repro, name)


def test_no_private_names_leak():
    """``__all__`` never exports underscore-prefixed names, and the
    exported objects live in ``repro``-owned modules."""
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert not name.startswith("_") or name == "__version__", (
                f"{module_name}.__all__ leaks private name {name!r}"
            )
            obj = getattr(module, name)
            owner = getattr(obj, "__module__", None)
            if owner is not None and (inspect.isclass(obj) or inspect.isfunction(obj)):
                assert owner.startswith("repro"), (
                    f"{module_name}.{name} is foreign ({owner})"
                )

def test_policies_have_unique_names():
    """Algorithm name strings are the CLI/summary identity — no collisions."""
    from repro.core import (
        DiskHpa,
        ElasticDockerPolicy,
        HyScaleCpu,
        HyScaleCpuMem,
        KubernetesHpa,
        KubernetesMemoryHpa,
        KubernetesMultiMetricHpa,
        NetworkHpa,
        PredictiveHyScale,
    )

    names = [
        cls.name
        for cls in (
            DiskHpa,
            ElasticDockerPolicy,
            HyScaleCpu,
            HyScaleCpuMem,
            KubernetesHpa,
            KubernetesMemoryHpa,
            KubernetesMultiMetricHpa,
            NetworkHpa,
            PredictiveHyScale,
        )
    ]
    assert len(set(names)) == len(names)


def test_make_policy_covers_all_registered_names():
    from repro.experiments.configs import ALGORITHMS, EXTENSION_ALGORITHMS, make_policy

    for name in ALGORITHMS + EXTENSION_ALGORITHMS:
        assert make_policy(name).name == name
