"""Tests for the scheduled-event queue."""

import pytest

from repro.errors import ClockError
from repro.sim.events import EventQueue


class TestScheduling:
    def test_fires_due_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(1.0, lambda: fired.append("a"))
        queue.schedule_at(2.0, lambda: fired.append("b"))
        assert queue.fire_due(1.5) == 1
        assert fired == ["a"]

    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(3.0, lambda: fired.append("late"))
        queue.schedule_at(1.0, lambda: fired.append("early"))
        queue.fire_due(5.0)
        assert fired == ["early", "late"]

    def test_equal_times_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            queue.schedule_at(1.0, lambda t=tag: fired.append(t))
        queue.fire_due(1.0)
        assert fired == ["first", "second", "third"]

    def test_schedule_after(self):
        queue = EventQueue()
        event = queue.schedule_after(10.0, 5.0, lambda: None)
        assert event.due == 15.0

    def test_rejects_negative_times(self):
        queue = EventQueue()
        with pytest.raises(ClockError):
            queue.schedule_at(-1.0, lambda: None)
        with pytest.raises(ClockError):
            queue.schedule_after(0.0, -1.0, lambda: None)


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        assert queue.fire_due(2.0) == 0
        assert fired == []

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule_at(1.0, lambda: None)
        drop = queue.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep.due == 1.0

    def test_next_due_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule_at(1.0, lambda: None)
        queue.schedule_at(2.0, lambda: None)
        first.cancel()
        assert queue.next_due() == 2.0

    def test_next_due_empty(self):
        assert EventQueue().next_due() is None


class TestCascades:
    def test_event_scheduling_past_event_fires_same_call(self):
        queue = EventQueue()
        fired = []

        def outer():
            fired.append("outer")
            queue.schedule_at(0.5, lambda: fired.append("inner"))

        queue.schedule_at(1.0, outer)
        queue.fire_due(1.0)
        assert fired == ["outer", "inner"]

    def test_future_events_stay_queued(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(1.0, lambda: queue.schedule_at(10.0, lambda: fired.append("later")))
        queue.fire_due(1.0)
        assert fired == []
        queue.fire_due(10.0)
        assert fired == ["later"]
