"""Scalar-vs-array engine equivalence at paper scale.

The array backend's whole contract is that it is *only* a faster spelling
of the object engine: same seed, same config, same policy must yield the
same bytes — summaries, scaling events, timeline, decision-trace JSONL,
and telemetry exports.  Every registered policy is pinned here at the
paper's 24-node scale; ``repro.engine_core.check`` re-asserts the same
contract with longer runs plus the 200/1,000-node scale bench.

Under ``pytest --simsan`` every one of these builds also runs sanitized,
which extends the SimSan invariant lane over the array backend for free.
"""

import pytest

from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig, SimulationConfig
from repro.core.registry import registered_policies
from repro.experiments.runner import Simulation
from repro.metrics.sla import Sla
from repro.obs import DecisionTracer, spans_to_jsonl
from repro.telemetry import MetricRegistry, SloTracker, render_openmetrics, snapshot_to_jsonl
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

PAPER_NODES = 24
DURATION = 45.0

ARTEFACTS = ("summary", "events", "timeline", "trace", "openmetrics", "snapshot")


def _fingerprint(policy: str, backend: str) -> dict:
    """One fully observed run; everything byte-comparable, keyed by name."""
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=PAPER_NODES), seed=7)
    specs = [
        MicroserviceSpec(
            name=f"svc-{i}", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=8
        )
        for i in range(2)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
        )
        for spec in specs
    ]
    tracer = DecisionTracer()
    registry = MetricRegistry()
    slo = SloTracker(Sla(response_time_target=5.0, availability_target=0.95))
    simulation = Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy=policy,
        workload_label="backend-parity",
        tracer=tracer,
        telemetry=registry,
        slo=slo,
        backend=backend,
    )
    summary = simulation.run(DURATION)
    now = simulation.engine.clock.now
    return {
        "summary": summary.to_dict(),
        "events": list(simulation.collector.events.events()),
        "timeline": list(simulation.collector.timeline),
        "trace": spans_to_jsonl(tracer.spans()),
        "openmetrics": render_openmetrics(registry),
        "snapshot": snapshot_to_jsonl(registry, now=now, alerts=slo.alerts()),
    }


@pytest.mark.parametrize("policy", registered_policies())
def test_policy_is_bit_identical_across_backends(policy):
    reference = _fingerprint(policy, "object")
    candidate = _fingerprint(policy, "array")
    for artefact in ARTEFACTS:
        assert candidate[artefact] == reference[artefact], (
            f"{policy}: array backend diverged on {artefact}"
        )
    # The run exercised the engine, not an idle cluster.
    assert reference["summary"]["total_requests"] > 100
    assert reference["trace"], "expected a non-empty decision trace"


def test_array_backend_run_is_reproducible():
    """Same seed, same backend, twice: the determinism contract holds on
    the array engine in its own right, not only relative to scalar."""
    first = _fingerprint("hybrid", "array")
    second = _fingerprint("hybrid", "array")
    assert first == second
