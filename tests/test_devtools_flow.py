"""Tests for FlowLint (``repro.devtools.flow``).

A small fixture package — engine, worker, merge, and unit-convert modules
under synthetic ``src/repro/...`` logical paths — exercises the call
graph, reachability, effect summaries, every rule family, the baseline
audit, and the ``repro.flow/1`` report codec.  A meta-test then asserts
the real tree analyzes clean (the CI gate, asserted in-process),
mirroring ``test_devtools_lint.py``.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.flow.analyze import (
    analyze_paths,
    analyze_sources,
    default_baseline,
    main,
)
from repro.devtools.flow.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
)
from repro.devtools.flow.callgraph import build_call_graph
from repro.devtools.flow.contracts import PROTOCOLS, check_contracts, contract_summary
from repro.devtools.flow.effects import effects_of
from repro.devtools.flow.reachability import discover_roots, reachable_from
from repro.devtools.flow.report import FLOW_SCHEMA, render_flow_json
from repro.devtools.flow.rules import flow_rule_catalog

REPO_ROOT = Path(__file__).resolve().parents[1]

# ----------------------------------------------------------------------
# Fixture package: a miniature repro tree with deliberate violations
# ----------------------------------------------------------------------
ENGINE_SRC = """\
class Helper:
    def tick(self) -> None:
        labels = ["a", "b"]
        if labels[0] in ["a", "c"]:
            del labels


class Engine:
    def __init__(self) -> None:
        self.helper = Helper()

    def step(self) -> None:
        self.helper.tick()
"""

ACTOR_SRC = """\
class Probe:
    def on_step(self, clock: object) -> None:
        key = f"probe/{clock}"
        del key
"""

WORKER_SRC = """\
import os

COUNTER = {}


def run_shard_payload(payload: dict) -> dict:
    COUNTER["runs"] = 1
    os.environ["SEED"] = "1"
    return payload
"""

EXECUTOR_SRC = """\
class SweepExecutor:
    def _merge(self, results: list) -> list:
        seen = set(results)
        out = []
        for item in seen:
            out.append(item)
        return out
"""

RESULT_SRC = """\
def combine(names: list) -> list:
    return [n for n in set(names)]
"""

UNITS_SRC = """\
def push(rate_mbps: float) -> None:
    del rate_mbps


def as_mbit(value_mbit: float) -> float:
    return value_mbit


def go(size_mb: float, total: float) -> None:
    push(size_mb)
    chunk_mb = as_mbit(total)
    del chunk_mb
"""

# --- DetFlow fixtures: taint sources, sanitizers, sinks, contracts ----
SINK_SRC = """\
def span_to_json_line(span: dict) -> str:
    return "{}"
"""

TAINT_PIPE_SRC = '''\
import json
import time

from repro.obs.export import span_to_json_line


def sample_clock() -> float:
    return time.time()


def stamp(span: dict) -> dict:
    span["ts"] = sample_clock()
    return span


def emit_span(span: dict) -> str:
    return span_to_json_line(stamp(span))


def gather_tags() -> list:
    tags = {"b", "a"}
    out = []
    for tag in tags:
        out.append(tag)
    return out


def emit_tags(span: dict) -> str:
    span["tags"] = gather_tags()
    return span_to_json_line(span)


def total_weight() -> float:
    weights = {0.125, 0.5}
    return sum(weights)


def emit_total(span: dict) -> str:
    span["total"] = total_weight()
    return span_to_json_line(span)


def gather_quiet() -> list:
    quiet = {"y", "x"}
    out = []
    for tag in quiet:
        out.append(tag)
    return out


def emit_sorted_tags(span: dict) -> str:
    return span_to_json_line(sorted(gather_quiet()))


def gather_canon() -> list:
    keys = {"k2", "k1"}
    out = []
    for key in keys:
        out.append(key)
    return out


def emit_digest(span: dict) -> str:
    return span_to_json_line(json.dumps(gather_canon(), sort_keys=True))


def list_inputs(root) -> list:
    return sorted(root.rglob("*.py"))


def draw_scaled(streams) -> float:
    rng = streams.stream("pipe")
    return rng.random()
'''

RNG_ACTOR_SRC = """\
import random


class JitterProbe:
    def on_step(self, clock: object) -> None:
        self.noise = random.random()
"""

POLICY_BASE_SRC = """\
import abc


class AutoscalingPolicy(abc.ABC):
    @abc.abstractmethod
    def decide(self, observation: dict) -> int:
        ...
"""

CON_IMPL_SRC = """\
import random

from repro.core.policy import AutoscalingPolicy
from repro.core.registry import register_policy

HISTORY = []


class JitterPolicy(AutoscalingPolicy):
    def act(self, observation: dict) -> int:
        return int(random.random() * 3)


class Freeloader:
    def decide(self, observation: dict) -> int:
        return 0


register_policy("jitter", lambda config: JitterPolicy())
register_policy("free", Freeloader)
"""

CON_OK_SRC = """\
from repro.core.policy import AutoscalingPolicy


class StepPolicy(AutoscalingPolicy):
    def __init__(self, rng=None) -> None:
        self.rng = rng

    def decide(self, observation: dict) -> int:
        return 0
"""

FIXTURE_SOURCES = [
    ("src/repro/sim/engine.py", ENGINE_SRC),
    ("src/repro/sim/probe.py", ACTOR_SRC),
    ("src/repro/sim/rng_actor.py", RNG_ACTOR_SRC),
    ("src/repro/parallel/worker.py", WORKER_SRC),
    ("src/repro/parallel/executor.py", EXECUTOR_SRC),
    ("src/repro/parallel/result.py", RESULT_SRC),
    ("src/repro/netsim/convert.py", UNITS_SRC),
    ("src/repro/obs/export.py", SINK_SRC),
    ("src/repro/analysis/pipe.py", TAINT_PIPE_SRC),
    ("src/repro/core/policy.py", POLICY_BASE_SRC),
    ("src/repro/core/custom.py", CON_IMPL_SRC),
    ("src/repro/core/goodpolicy.py", CON_OK_SRC),
]


def fixture_analysis(baseline=None):
    if baseline is None:
        return analyze_sources(list(FIXTURE_SOURCES))
    return analyze_sources(list(FIXTURE_SOURCES), baseline)


def rules_of(analysis):
    return sorted({fv.rule for fv in analysis.report.unbaselined})


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_collects_methods_and_functions(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        assert "repro.sim.engine.Engine.step" in graph.functions
        assert "repro.parallel.worker.run_shard_payload" in graph.functions
        fn = graph.functions["repro.sim.engine.Engine.step"]
        assert fn.module == "repro.sim.engine"
        assert fn.cls == "Engine"
        assert fn.path == "src/repro/sim/engine.py"

    def test_resolves_attribute_call_through_constructor_type(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        # ``self.helper = Helper()`` types the attribute, so
        # ``self.helper.tick()`` resolves precisely.
        assert "repro.sim.engine.Helper.tick" in graph.callees(
            "repro.sim.engine.Engine.step"
        )

    def test_bare_name_call_resolves_to_local_function(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        assert "repro.netsim.convert.push" in graph.callees(
            "repro.netsim.convert.go"
        )

    def test_module_mutables_are_indexed(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        module = graph.modules["repro.parallel.worker"]
        assert [name for name, _ in module.module_mutables] == ["COUNTER"]


# ----------------------------------------------------------------------
# Reachability
# ----------------------------------------------------------------------
class TestReachability:
    def test_step_roots_include_engine_step_and_on_step_actors(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        roots = discover_roots(graph)
        assert "repro.sim.engine.Engine.step" in roots.step
        assert "repro.sim.probe.Probe.on_step" in roots.step

    def test_worker_and_merge_roots(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        roots = discover_roots(graph)
        assert roots.worker == ("repro.parallel.worker.run_shard_payload",)
        assert "repro.parallel.executor.SweepExecutor._merge" in roots.merge
        assert "repro.parallel.result.combine" in roots.merge

    def test_step_reachability_is_transitive(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        roots = discover_roots(graph)
        reachable = reachable_from(graph, roots.step)
        assert "repro.sim.engine.Helper.tick" in reachable
        # The worker never runs inside a step.
        assert "repro.parallel.worker.run_shard_payload" not in reachable


# ----------------------------------------------------------------------
# Effect summaries
# ----------------------------------------------------------------------
class TestEffects:
    def _summary(self, qualname):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        return effects_of(graph.functions[qualname])

    def test_constant_list_literal_is_a_hoistable_allocation(self):
        summary = self._summary("repro.sim.engine.Helper.tick")
        kinds = {(s.kind, s.constant) for s in summary.allocations}
        assert ("list-literal", True) in kinds

    def test_list_membership_is_recorded(self):
        summary = self._summary("repro.sim.engine.Helper.tick")
        assert [m.detail for m in summary.memberships] == ["list literal"]

    def test_fstring_allocation_is_recorded(self):
        summary = self._summary("repro.sim.probe.Probe.on_step")
        assert "fstring" in {s.kind for s in summary.allocations}

    def test_environ_write_is_a_global_write(self):
        summary = self._summary("repro.parallel.worker.run_shard_payload")
        assert "os.environ" in {w.target for w in summary.global_writes}

    def test_set_iteration_is_recorded(self):
        summary = self._summary("repro.parallel.executor.SweepExecutor._merge")
        assert [s.context for s in summary.set_iterations] == ["for-loop"]

    def test_unit_signature_from_suffixes(self):
        summary = self._summary("repro.netsim.convert.push")
        assert "rate_mbps" in summary.param_units
        returning = self._summary("repro.netsim.convert.as_mbit")
        assert returning.return_unit is not None


# ----------------------------------------------------------------------
# Rule families
# ----------------------------------------------------------------------
class TestFlowRules:
    def test_fixture_trips_every_family(self):
        analysis = fixture_analysis()
        found = rules_of(analysis)
        for rule in (
            "HOT001",
            "HOT002",
            "HOT004",
            "PAR001",
            "PAR002",
            "PAR003",
            "UNIT002",
            "DET101",
            "DET102",
            "DET103",
            "DET104",
            "CON001",
            "CON002",
            "CON003",
        ):
            assert rule in found, f"{rule} missing from {found}"

    def test_violations_name_the_offending_function(self):
        analysis = fixture_analysis()
        par002 = [fv for fv in analysis.report.unbaselined if fv.rule == "PAR002"]
        assert par002
        assert all(
            fv.function == "repro.parallel.worker.run_shard_payload" for fv in par002
        )

    def test_unit002_crosses_the_call_boundary(self):
        analysis = fixture_analysis()
        unit = [fv for fv in analysis.report.unbaselined if fv.rule == "UNIT002"]
        messages = " / ".join(fv.message for fv in unit)
        assert "push" in messages  # param mismatch
        assert "as_mbit" in messages  # return mismatch

    def test_catalog_covers_all_families(self):
        catalog = flow_rule_catalog()
        assert set(catalog) == {
            "HOT001",
            "HOT002",
            "HOT003",
            "HOT004",
            "PAR001",
            "PAR002",
            "PAR003",
            "UNIT002",
            "DET101",
            "DET102",
            "DET103",
            "DET104",
            "CON001",
            "CON002",
            "CON003",
            "CON004",
        }
        assert all(summary for summary in catalog.values())


# ----------------------------------------------------------------------
# DetFlow: determinism taint (DET101–104)
# ----------------------------------------------------------------------
class TestDetFlowTaint:
    def _taint(self):
        return fixture_analysis().report.taint

    def _paths_for(self, rule):
        return [p for p in self._taint().paths if p.rule == rule]

    def test_det101_witness_chain_is_multi_hop(self):
        # time.time() in sample_clock -> stamp -> emit_span -> sink.
        paths = self._paths_for("DET101")
        assert paths
        path = next(
            p for p in paths if p.source_function.endswith("sample_clock")
        )
        assert path.kind == "wall-clock"
        assert path.source_detail == "time.time"
        assert path.sink == "repro.obs.export.span_to_json_line"
        assert path.sink_family == "repro.obs/1"
        assert path.hops >= 2
        assert path.chain == (
            "repro.analysis.pipe.sample_clock",
            "repro.analysis.pipe.stamp",
            "repro.analysis.pipe.emit_span",
            "repro.obs.export.span_to_json_line",
        )

    def test_det103_set_iteration_reaches_sink(self):
        paths = self._paths_for("DET103")
        assert any(
            p.source_function.endswith("gather_tags")
            and p.kind == "unordered-iter"
            for p in paths
        )

    def test_det104_float_accumulation_reaches_sink(self):
        paths = self._paths_for("DET104")
        assert any(
            p.source_function.endswith("total_weight")
            and p.kind == "float-accum-unordered"
            for p in paths
        )

    def test_det102_flags_step_reachable_ambient_rng(self):
        analysis = fixture_analysis()
        det102 = [fv for fv in analysis.report.unbaselined if fv.rule == "DET102"]
        assert [fv.function for fv in det102] == [
            "repro.sim.rng_actor.JitterProbe.on_step"
        ]
        assert "RngStreams" in det102[0].message

    def test_sort_barrier_in_caller_kills_the_path(self):
        # gather_quiet's only route to the sink is
        # ``span_to_json_line(sorted(gather_quiet()))`` — no path survives.
        taint = self._taint()
        assert not any(
            p.source_function.endswith("gather_quiet") for p in taint.paths
        )

    def test_canonical_json_in_caller_kills_the_path(self):
        # gather_canon is only reachable through
        # ``json.dumps(gather_canon(), sort_keys=True)``.
        taint = self._taint()
        assert not any(
            p.source_function.endswith("gather_canon") for p in taint.paths
        )

    def test_sorted_at_birth_kills_fs_enumeration(self):
        # ``sorted(root.rglob(...))`` never becomes a live source.
        taint = self._taint()
        facts = taint.facts["repro.analysis.pipe.list_inputs"]
        assert facts.sources == ()
        assert [k.kind for k in facts.killed] == ["fs-enumeration"]

    def test_rng_stream_derivation_is_a_sanitizer_not_a_source(self):
        taint = self._taint()
        facts = taint.facts["repro.analysis.pipe.draw_scaled"]
        assert facts.sources == ()
        assert facts.sanitizers.get("rng-stream", 0) == 1

    def test_every_sanitizer_class_is_applied_in_the_fixture(self):
        applications = self._taint().sanitizer_applications
        for cls in ("sort-barrier", "canonical-json", "rng-stream"):
            assert applications[cls] >= 1, applications

    def test_paths_are_ranked_and_deduplicated(self):
        taint = self._taint()
        assert [p.rank for p in taint.paths] == list(
            range(1, len(taint.paths) + 1)
        )
        keys = [(p.kind, p.source_function, p.sink) for p in taint.paths]
        assert len(keys) == len(set(keys))

    def test_violation_message_carries_the_witness_chain(self):
        analysis = fixture_analysis()
        det101 = [fv for fv in analysis.report.unbaselined if fv.rule == "DET101"]
        assert det101
        message = det101[0].message
        assert "canonical sink" in message
        assert " -> " in message  # the rendered chain


# ----------------------------------------------------------------------
# DetFlow: registry contracts (CON001–003)
# ----------------------------------------------------------------------
class TestContracts:
    def _findings(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        return check_contracts(graph)

    def test_protocol_catalogue_names_three_registries(self):
        assert [spec.registry for spec in PROTOCOLS] == [
            "policy",
            "sampling",
            "backend",
        ]

    def test_con001_flags_unimplemented_abstract_method(self):
        findings = self._findings()
        jitter = [
            f
            for f in findings
            if f.rule == "CON001" and f.cls.endswith("JitterPolicy")
        ]
        assert any("abstract method `decide`" in f.message for f in jitter)

    def test_con001_flags_registered_non_subclass(self):
        findings = self._findings()
        stranger = [
            f
            for f in findings
            if f.rule == "CON001" and f.cls.endswith("Freeloader")
        ]
        assert len(stranger) == 1
        assert "does not subclass" in stranger[0].message

    def test_con002_flags_module_mutable_per_implementation(self):
        findings = self._findings()
        con002 = [f for f in findings if f.rule == "CON002"]
        assert all("HISTORY" in f.message for f in con002)
        assert {f.cls for f in con002} == {
            "repro.core.custom.Freeloader",
            "repro.core.custom.JitterPolicy",
        }

    def test_con003_flags_ambient_rng_without_injectable_ctor(self):
        findings = self._findings()
        con003 = [f for f in findings if f.rule == "CON003"]
        assert [f.cls for f in con003] == ["repro.core.custom.JitterPolicy"]
        assert "ambient RNG" in con003[0].message

    def test_conforming_policy_with_rng_param_is_clean(self):
        findings = self._findings()
        assert not any(f.cls.endswith("StepPolicy") for f in findings)

    def test_discovery_counts_subclasses_and_registered_strangers(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        # JitterPolicy + StepPolicy (subclasses) + Freeloader (register call).
        assert contract_summary(graph) == {"policy": 3}

    def test_abstract_base_is_not_an_implementation(self):
        findings = self._findings()
        assert not any(f.cls.endswith("AutoscalingPolicy") for f in findings)


# ----------------------------------------------------------------------
# DetFlow: call-site registry contracts (CON004)
# ----------------------------------------------------------------------
CALLSITE_REGISTRY_SRC = """\
def register_workload(name, factory, *, takes_burst=True, replace=False):
    pass
"""

CALLSITE_USE_SRC = """\
from repro.workloads.registry import register_workload


def cpu_factory():
    return None


register_workload("cpu", cpu_factory)
register_workload("cpu", cpu_factory)
register_workload("cpu", cpu_factory, replace=True)
register_workload("", cpu_factory)
register_workload("lit", "not-a-factory")
"""

CALLSITE_SOURCES = [
    ("src/repro/workloads/registry.py", CALLSITE_REGISTRY_SRC),
    ("src/repro/experiments/configs.py", CALLSITE_USE_SRC),
]


class TestCallSiteContracts:
    """CON004 judges ``register_workload``-style call sites, not classes."""

    def _findings(self):
        graph = build_call_graph(list(CALLSITE_SOURCES))
        return [f for f in check_contracts(graph) if f.rule == "CON004"]

    def test_duplicate_literal_name_without_replace(self):
        messages = [f.message for f in self._findings()]
        assert any("registered twice" in m for m in messages)
        # The replace=True re-registration is legal and reported nowhere.
        assert sum("registered twice" in m for m in messages) == 1

    def test_empty_name_and_literal_factory(self):
        messages = [f.message for f in self._findings()]
        assert any("non-empty string" in m for m in messages)
        assert any("'not-a-factory'" in m for m in messages)

    def test_census_counts_distinct_literal_names(self):
        graph = build_call_graph(list(CALLSITE_SOURCES))
        # "cpu" and "lit"; the empty name is invalid, not an entry.
        assert contract_summary(graph)["workload"] == 2

    def test_absent_registry_module_is_skipped(self):
        # The shared fixture tree has no repro.workloads.registry, so the
        # call-site registries stay out of its census (the exact pin in
        # test_discovery_counts_subclasses_and_registered_strangers).
        graph = build_call_graph(list(FIXTURE_SOURCES))
        assert "workload" not in contract_summary(graph)
        assert not any(f.rule == "CON004" for f in check_contracts(graph))


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def _baseline(self, *entries):
        return Baseline(path=".flowlint-baseline.json", entries=tuple(entries))

    def test_matching_entry_suppresses_the_finding(self):
        baseline = self._baseline(
            BaselineEntry(
                rule="PAR002",
                function="repro.parallel.worker.run_shard_payload",
                reason="fixture: acknowledged seed plumbing",
            )
        )
        analysis = fixture_analysis(baseline)
        assert "PAR002" not in rules_of(analysis)
        assert any(fv.rule == "PAR002" for fv in analysis.report.suppressed)
        assert analysis.report.baseline_audit == ()

    def test_stale_entry_is_base001(self):
        baseline = self._baseline(
            BaselineEntry(rule="HOT001", function="repro.no.such.fn", reason="gone")
        )
        analysis = fixture_analysis(baseline)
        assert [v.rule for v in analysis.report.baseline_audit] == ["BASE001"]
        assert not analysis.clean

    def test_removed_rule_entry_is_base001(self):
        # A catalogue bump that drops a rule must fail the baseline loudly.
        baseline = self._baseline(
            BaselineEntry(
                rule="HOT999",
                function="repro.parallel.worker.run_shard_payload",
                reason="kept across a catalogue bump",
            )
        )
        analysis = fixture_analysis(baseline)
        audit = [v for v in analysis.report.baseline_audit if v.rule == "BASE001"]
        assert len(audit) == 1
        assert "removed or renamed" in audit[0].message
        assert "HOT999" in audit[0].message
        assert not analysis.clean

    def test_known_rule_with_vanished_function_is_stale_not_removed(self):
        baseline = self._baseline(
            BaselineEntry(rule="DET101", function="repro.no.such.fn", reason="gone")
        )
        analysis = fixture_analysis(baseline)
        audit = [v for v in analysis.report.baseline_audit if v.rule == "BASE001"]
        assert len(audit) == 1
        assert "removed or renamed" not in audit[0].message

    def test_missing_reason_is_base002(self):
        baseline = self._baseline(
            BaselineEntry(
                rule="PAR002",
                function="repro.parallel.worker.run_shard_payload",
                reason="  ",
            )
        )
        analysis = fixture_analysis(baseline)
        assert "BASE002" in [v.rule for v in analysis.report.baseline_audit]

    def test_apply_baseline_partitions_findings(self):
        analysis = fixture_analysis()
        findings = list(analysis.report.unbaselined)
        key = findings[0]
        baseline = self._baseline(
            BaselineEntry(rule=key.rule, function=key.function, reason="fixture")
        )
        unbaselined, suppressed, audit = apply_baseline(findings, baseline)
        assert key not in unbaselined
        assert key in suppressed
        assert audit == []

    def test_load_baseline_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_load_baseline_rejects_unparseable_file(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_load_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "entries": [
                        {"rule": "PAR001", "function": "repro.x.y", "reason": "why"}
                    ],
                }
            )
        )
        baseline = load_baseline(path)
        assert baseline.keys() == frozenset({("PAR001", "repro.x.y")})


# ----------------------------------------------------------------------
# Report codec
# ----------------------------------------------------------------------
class TestReport:
    def test_schema_and_sections(self):
        payload = json.loads(render_flow_json(fixture_analysis().report))
        assert payload["schema"] == FLOW_SCHEMA
        assert payload["catalogue_version"]
        assert set(payload["rules"]) == set(flow_rule_catalog())
        assert payload["graph"]["functions"] > 0
        assert payload["reachable"]["step"] >= 2

    def test_inventory_ranks_step_reachable_allocations(self):
        report = fixture_analysis().report
        assert report.inventory
        assert [e.rank for e in report.inventory] == list(
            range(1, len(report.inventory) + 1)
        )
        # Only step-reachable functions contribute.
        assert all("parallel" not in e.function for e in report.inventory)

    def test_report_is_byte_identical_across_runs(self):
        first = render_flow_json(fixture_analysis().report)
        second = render_flow_json(fixture_analysis().report)
        assert first == second

    def test_tainted_path_inventory_section(self):
        payload = json.loads(render_flow_json(fixture_analysis().report))
        inventory = payload["tainted_path_inventory"]
        assert inventory
        assert {row["rule"] for row in inventory} == {"DET101", "DET103", "DET104"}
        first = inventory[0]
        for key in (
            "rank",
            "rule",
            "kind",
            "source_function",
            "source_path",
            "source_line",
            "source_detail",
            "sink",
            "sink_family",
            "hops",
            "chain",
        ):
            assert key in first, key
        assert all(row["hops"] >= 1 for row in inventory)

    def test_taint_summary_section(self):
        payload = json.loads(render_flow_json(fixture_analysis().report))
        summary = payload["taint_summary"]
        assert summary["sources"] >= 4
        assert summary["sources_killed_at_birth"] >= 1
        assert "wall-clock" in summary["sources_by_kind"]
        assert "repro.obs.export.span_to_json_line" in summary["sinks_present"]
        assert summary["tainted_paths"] == len(payload["tainted_path_inventory"])

    def test_contracts_section(self):
        payload = json.loads(render_flow_json(fixture_analysis().report))
        contracts = payload["contracts"]
        assert contracts["implementations"] == {"policy": 3}
        assert contracts["findings"] >= 4  # CON001 x2, CON002 x2, CON003 x1


# ----------------------------------------------------------------------
# CLI (python -m repro.devtools.flow)
# ----------------------------------------------------------------------
class TestCli:
    def _write_fixture_tree(self, root: Path) -> None:
        for logical, source in FIXTURE_SOURCES:
            path = root / logical
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        assert main(["src/repro", "--root", str(tmp_path)]) == 1
        assert "PAR002" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["no-such-dir", "--root", str(tmp_path)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_exit_two_on_malformed_baseline(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        (tmp_path / ".flowlint-baseline.json").write_text("{not json")
        assert main(["src/repro", "--root", str(tmp_path)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        assert main(["src/repro", "--root", str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        # Entries are written without reasons ("TODO: justify" placeholders
        # count as reasons), so the next run is clean.
        assert main(["src/repro", "--root", str(tmp_path)]) == 0
        assert "0 unbaselined" in capsys.readouterr().out

    def test_report_flag_writes_canonical_json(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        report_path = tmp_path / "flow.json"
        main(["src/repro", "--root", str(tmp_path), "--report", str(report_path)])
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["schema"] == FLOW_SCHEMA

    def test_list_rules_flag(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in flow_rule_catalog():
            assert rule_id in out

    def test_exit_two_on_unknown_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--no-such-flag"])
        assert excinfo.value.code == 2
        assert "no-such-flag" in capsys.readouterr().err

    def test_exit_one_with_tainted_path_inventory(self, tmp_path, capsys):
        # The seeded fixture tree must produce a non-empty inventory and
        # a failing exit status.
        self._write_fixture_tree(tmp_path)
        report_path = tmp_path / "flow.json"
        assert (
            main(["src/repro", "--root", str(tmp_path), "--report", str(report_path)])
            == 1
        )
        out = capsys.readouterr().out
        assert "tainted path(s)" in out
        assert "DET101" in out
        payload = json.loads(report_path.read_text())
        assert payload["tainted_path_inventory"]
        assert payload["taint_summary"]["tainted_paths"] > 0

    def test_report_artifact_includes_phase_timings(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        report_path = tmp_path / "flow.json"
        main(["src/repro", "--root", str(tmp_path), "--report", str(report_path)])
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        timings = payload["timings"]
        for phase in (
            "parse_graph",
            "reachability",
            "effects",
            "taint",
            "contracts",
            "rules",
            "report",
            "total",
        ):
            assert phase in timings, phase
        assert timings["total"] >= 0.0

    def test_max_wall_gate_trips_on_zero_budget(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        assert main(["src/repro", "--root", str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["src/repro", "--root", str(tmp_path), "--max-wall", "0"]) == 1
        captured = capsys.readouterr()
        assert "perf gate" in captured.err
        assert "exceeded" in captured.err

    def test_max_wall_gate_passes_on_generous_budget(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        assert main(["src/repro", "--root", str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["src/repro", "--root", str(tmp_path), "--max-wall", "60"]) == 0
        assert "perf gate" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The real tree must analyze clean (the CI gate, asserted in-process)
# ----------------------------------------------------------------------
class TestRepositoryAnalyzesClean:
    def _analysis(self):
        baseline = default_baseline(REPO_ROOT)
        return analyze_paths(["src/repro"], root=REPO_ROOT, baseline=baseline)

    def test_src_repro_analyzes_clean(self):
        analysis = self._analysis()
        assert len(analysis.graph.functions) > 500  # the walker found the tree
        assert len(analysis.report.inventory) >= 10  # the ranked work-list exists
        assert analysis.clean, "\n" + "\n".join(
            v.render() for v in analysis.violations
        )

    def test_src_repro_has_no_tainted_paths(self):
        # The determinism pin: no nondeterminism source in the real tree
        # reaches a canonical codec.  Any regression shows up as a ranked
        # witness chain here before it shows up as flaky artifact bytes.
        taint = self._analysis().report.taint
        assert taint is not None
        assert taint.paths == (), [p.to_dict() for p in taint.paths]
        # All five artifact codecs plus the derived keys are in the graph.
        assert len(taint.sinks_present) >= 20

    def test_src_repro_registry_contracts_hold(self):
        analysis = self._analysis()
        assert analysis.report.contracts == (), analysis.report.contracts
        summary = contract_summary(analysis.graph)
        # The nine shipped policies, both sampling controllers, and the
        # array backend are all discovered.
        assert summary["policy"] >= 9
        assert summary["sampling"] >= 2
        assert summary["backend"] >= 1
        # Call-site registries: the six CLI workloads, the three-tier app,
        # and the routing table (built-ins are enum members, not call
        # sites, so the routing census counts extensions only).
        assert summary["workload"] >= 6
        assert summary["app"] >= 1
        assert summary["routing"] >= 0
