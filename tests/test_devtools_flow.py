"""Tests for FlowLint (``repro.devtools.flow``).

A small fixture package — engine, worker, merge, and unit-convert modules
under synthetic ``src/repro/...`` logical paths — exercises the call
graph, reachability, effect summaries, every rule family, the baseline
audit, and the ``repro.flow/1`` report codec.  A meta-test then asserts
the real tree analyzes clean (the CI gate, asserted in-process),
mirroring ``test_devtools_lint.py``.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.flow.analyze import (
    analyze_paths,
    analyze_sources,
    default_baseline,
    main,
)
from repro.devtools.flow.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
)
from repro.devtools.flow.callgraph import build_call_graph
from repro.devtools.flow.effects import effects_of
from repro.devtools.flow.reachability import discover_roots, reachable_from
from repro.devtools.flow.report import FLOW_SCHEMA, render_flow_json
from repro.devtools.flow.rules import flow_rule_catalog

REPO_ROOT = Path(__file__).resolve().parents[1]

# ----------------------------------------------------------------------
# Fixture package: a miniature repro tree with deliberate violations
# ----------------------------------------------------------------------
ENGINE_SRC = """\
class Helper:
    def tick(self) -> None:
        labels = ["a", "b"]
        if labels[0] in ["a", "c"]:
            del labels


class Engine:
    def __init__(self) -> None:
        self.helper = Helper()

    def step(self) -> None:
        self.helper.tick()
"""

ACTOR_SRC = """\
class Probe:
    def on_step(self, clock: object) -> None:
        key = f"probe/{clock}"
        del key
"""

WORKER_SRC = """\
import os

COUNTER = {}


def run_shard_payload(payload: dict) -> dict:
    COUNTER["runs"] = 1
    os.environ["SEED"] = "1"
    return payload
"""

EXECUTOR_SRC = """\
class SweepExecutor:
    def _merge(self, results: list) -> list:
        seen = set(results)
        out = []
        for item in seen:
            out.append(item)
        return out
"""

RESULT_SRC = """\
def combine(names: list) -> list:
    return [n for n in set(names)]
"""

UNITS_SRC = """\
def push(rate_mbps: float) -> None:
    del rate_mbps


def as_mbit(value_mbit: float) -> float:
    return value_mbit


def go(size_mb: float, total: float) -> None:
    push(size_mb)
    chunk_mb = as_mbit(total)
    del chunk_mb
"""

FIXTURE_SOURCES = [
    ("src/repro/sim/engine.py", ENGINE_SRC),
    ("src/repro/sim/probe.py", ACTOR_SRC),
    ("src/repro/parallel/worker.py", WORKER_SRC),
    ("src/repro/parallel/executor.py", EXECUTOR_SRC),
    ("src/repro/parallel/result.py", RESULT_SRC),
    ("src/repro/netsim/convert.py", UNITS_SRC),
]


def fixture_analysis(baseline=None):
    if baseline is None:
        return analyze_sources(list(FIXTURE_SOURCES))
    return analyze_sources(list(FIXTURE_SOURCES), baseline)


def rules_of(analysis):
    return sorted({fv.rule for fv in analysis.report.unbaselined})


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_collects_methods_and_functions(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        assert "repro.sim.engine.Engine.step" in graph.functions
        assert "repro.parallel.worker.run_shard_payload" in graph.functions
        fn = graph.functions["repro.sim.engine.Engine.step"]
        assert fn.module == "repro.sim.engine"
        assert fn.cls == "Engine"
        assert fn.path == "src/repro/sim/engine.py"

    def test_resolves_attribute_call_through_constructor_type(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        # ``self.helper = Helper()`` types the attribute, so
        # ``self.helper.tick()`` resolves precisely.
        assert "repro.sim.engine.Helper.tick" in graph.callees(
            "repro.sim.engine.Engine.step"
        )

    def test_bare_name_call_resolves_to_local_function(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        assert "repro.netsim.convert.push" in graph.callees(
            "repro.netsim.convert.go"
        )

    def test_module_mutables_are_indexed(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        module = graph.modules["repro.parallel.worker"]
        assert [name for name, _ in module.module_mutables] == ["COUNTER"]


# ----------------------------------------------------------------------
# Reachability
# ----------------------------------------------------------------------
class TestReachability:
    def test_step_roots_include_engine_step_and_on_step_actors(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        roots = discover_roots(graph)
        assert "repro.sim.engine.Engine.step" in roots.step
        assert "repro.sim.probe.Probe.on_step" in roots.step

    def test_worker_and_merge_roots(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        roots = discover_roots(graph)
        assert roots.worker == ("repro.parallel.worker.run_shard_payload",)
        assert "repro.parallel.executor.SweepExecutor._merge" in roots.merge
        assert "repro.parallel.result.combine" in roots.merge

    def test_step_reachability_is_transitive(self):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        roots = discover_roots(graph)
        reachable = reachable_from(graph, roots.step)
        assert "repro.sim.engine.Helper.tick" in reachable
        # The worker never runs inside a step.
        assert "repro.parallel.worker.run_shard_payload" not in reachable


# ----------------------------------------------------------------------
# Effect summaries
# ----------------------------------------------------------------------
class TestEffects:
    def _summary(self, qualname):
        graph = build_call_graph(list(FIXTURE_SOURCES))
        return effects_of(graph.functions[qualname])

    def test_constant_list_literal_is_a_hoistable_allocation(self):
        summary = self._summary("repro.sim.engine.Helper.tick")
        kinds = {(s.kind, s.constant) for s in summary.allocations}
        assert ("list-literal", True) in kinds

    def test_list_membership_is_recorded(self):
        summary = self._summary("repro.sim.engine.Helper.tick")
        assert [m.detail for m in summary.memberships] == ["list literal"]

    def test_fstring_allocation_is_recorded(self):
        summary = self._summary("repro.sim.probe.Probe.on_step")
        assert "fstring" in {s.kind for s in summary.allocations}

    def test_environ_write_is_a_global_write(self):
        summary = self._summary("repro.parallel.worker.run_shard_payload")
        assert "os.environ" in {w.target for w in summary.global_writes}

    def test_set_iteration_is_recorded(self):
        summary = self._summary("repro.parallel.executor.SweepExecutor._merge")
        assert [s.context for s in summary.set_iterations] == ["for-loop"]

    def test_unit_signature_from_suffixes(self):
        summary = self._summary("repro.netsim.convert.push")
        assert "rate_mbps" in summary.param_units
        returning = self._summary("repro.netsim.convert.as_mbit")
        assert returning.return_unit is not None


# ----------------------------------------------------------------------
# Rule families
# ----------------------------------------------------------------------
class TestFlowRules:
    def test_fixture_trips_every_family(self):
        analysis = fixture_analysis()
        found = rules_of(analysis)
        for rule in ("HOT001", "HOT002", "HOT004", "PAR001", "PAR002", "PAR003", "UNIT002"):
            assert rule in found, f"{rule} missing from {found}"

    def test_violations_name_the_offending_function(self):
        analysis = fixture_analysis()
        par002 = [fv for fv in analysis.report.unbaselined if fv.rule == "PAR002"]
        assert par002
        assert all(
            fv.function == "repro.parallel.worker.run_shard_payload" for fv in par002
        )

    def test_unit002_crosses_the_call_boundary(self):
        analysis = fixture_analysis()
        unit = [fv for fv in analysis.report.unbaselined if fv.rule == "UNIT002"]
        messages = " / ".join(fv.message for fv in unit)
        assert "push" in messages  # param mismatch
        assert "as_mbit" in messages  # return mismatch

    def test_catalog_covers_all_families(self):
        catalog = flow_rule_catalog()
        assert set(catalog) == {
            "HOT001",
            "HOT002",
            "HOT003",
            "HOT004",
            "PAR001",
            "PAR002",
            "PAR003",
            "UNIT002",
        }
        assert all(summary for summary in catalog.values())


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def _baseline(self, *entries):
        return Baseline(path=".flowlint-baseline.json", entries=tuple(entries))

    def test_matching_entry_suppresses_the_finding(self):
        baseline = self._baseline(
            BaselineEntry(
                rule="PAR002",
                function="repro.parallel.worker.run_shard_payload",
                reason="fixture: acknowledged seed plumbing",
            )
        )
        analysis = fixture_analysis(baseline)
        assert "PAR002" not in rules_of(analysis)
        assert any(fv.rule == "PAR002" for fv in analysis.report.suppressed)
        assert analysis.report.baseline_audit == ()

    def test_stale_entry_is_base001(self):
        baseline = self._baseline(
            BaselineEntry(rule="HOT001", function="repro.no.such.fn", reason="gone")
        )
        analysis = fixture_analysis(baseline)
        assert [v.rule for v in analysis.report.baseline_audit] == ["BASE001"]
        assert not analysis.clean

    def test_missing_reason_is_base002(self):
        baseline = self._baseline(
            BaselineEntry(
                rule="PAR002",
                function="repro.parallel.worker.run_shard_payload",
                reason="  ",
            )
        )
        analysis = fixture_analysis(baseline)
        assert "BASE002" in [v.rule for v in analysis.report.baseline_audit]

    def test_apply_baseline_partitions_findings(self):
        analysis = fixture_analysis()
        findings = list(analysis.report.unbaselined)
        key = findings[0]
        baseline = self._baseline(
            BaselineEntry(rule=key.rule, function=key.function, reason="fixture")
        )
        unbaselined, suppressed, audit = apply_baseline(findings, baseline)
        assert key not in unbaselined
        assert key in suppressed
        assert audit == []

    def test_load_baseline_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_load_baseline_rejects_unparseable_file(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_load_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "entries": [
                        {"rule": "PAR001", "function": "repro.x.y", "reason": "why"}
                    ],
                }
            )
        )
        baseline = load_baseline(path)
        assert baseline.keys() == frozenset({("PAR001", "repro.x.y")})


# ----------------------------------------------------------------------
# Report codec
# ----------------------------------------------------------------------
class TestReport:
    def test_schema_and_sections(self):
        payload = json.loads(render_flow_json(fixture_analysis().report))
        assert payload["schema"] == FLOW_SCHEMA
        assert payload["catalogue_version"]
        assert set(payload["rules"]) == set(flow_rule_catalog())
        assert payload["graph"]["functions"] > 0
        assert payload["reachable"]["step"] >= 2

    def test_inventory_ranks_step_reachable_allocations(self):
        report = fixture_analysis().report
        assert report.inventory
        assert [e.rank for e in report.inventory] == list(
            range(1, len(report.inventory) + 1)
        )
        # Only step-reachable functions contribute.
        assert all("parallel" not in e.function for e in report.inventory)

    def test_report_is_byte_identical_across_runs(self):
        first = render_flow_json(fixture_analysis().report)
        second = render_flow_json(fixture_analysis().report)
        assert first == second


# ----------------------------------------------------------------------
# CLI (python -m repro.devtools.flow)
# ----------------------------------------------------------------------
class TestCli:
    def _write_fixture_tree(self, root: Path) -> None:
        for logical, source in FIXTURE_SOURCES:
            path = root / logical
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        assert main(["src/repro", "--root", str(tmp_path)]) == 1
        assert "PAR002" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["no-such-dir", "--root", str(tmp_path)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_exit_two_on_malformed_baseline(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        (tmp_path / ".flowlint-baseline.json").write_text("{not json")
        assert main(["src/repro", "--root", str(tmp_path)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        assert main(["src/repro", "--root", str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        # Entries are written without reasons ("TODO: justify" placeholders
        # count as reasons), so the next run is clean.
        assert main(["src/repro", "--root", str(tmp_path)]) == 0
        assert "0 unbaselined" in capsys.readouterr().out

    def test_report_flag_writes_canonical_json(self, tmp_path, capsys):
        self._write_fixture_tree(tmp_path)
        report_path = tmp_path / "flow.json"
        main(["src/repro", "--root", str(tmp_path), "--report", str(report_path)])
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["schema"] == FLOW_SCHEMA

    def test_list_rules_flag(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in flow_rule_catalog():
            assert rule_id in out


# ----------------------------------------------------------------------
# The real tree must analyze clean (the CI gate, asserted in-process)
# ----------------------------------------------------------------------
class TestRepositoryAnalyzesClean:
    def test_src_repro_analyzes_clean(self):
        baseline = default_baseline(REPO_ROOT)
        analysis = analyze_paths(["src/repro"], root=REPO_ROOT, baseline=baseline)
        assert len(analysis.graph.functions) > 500  # the walker found the tree
        assert len(analysis.report.inventory) >= 10  # the ranked work-list exists
        assert analysis.clean, "\n" + "\n".join(
            v.render() for v in analysis.violations
        )
