"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kubernetes" in out and "bitbrains" in out

    def test_run_requires_workload_or_app(self):
        # ``workload`` became optional when ``--app`` arrived; exactly one
        # of the two must be named, enforced past the parser (exit 2).
        assert main(["run"]) == 2
        assert main(["run", "cpu", "--app", "three-tier"]) == 2

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gpu"])

    def test_run_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "cpu", "--algorithms", "magic"])

    def test_workload_registry_covers_paper(self):
        # The paper's five workloads plus the disk extension.
        assert set(WORKLOADS) == {"cpu", "memory", "mixed", "network", "disk", "bitbrains"}

    def test_run_parallel_flag_defaults(self):
        args = build_parser().parse_args(["run", "cpu"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.seed_mode == "shared"  # the paper's like-for-like replay

    def test_reproduce_parallel_flag_defaults(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_run_rejects_unknown_seed_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "cpu", "--seed-mode", "lucky"])

    def test_run_sampling_defaults_to_full(self):
        args = build_parser().parse_args(["run", "cpu"])
        assert args.sampling == "full"

    def test_run_rejects_unknown_sampling_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "cpu", "--sampling", "psychic"])

    def test_top_nodes_and_sampling_flags(self):
        args = build_parser().parse_args(
            ["top", "cpu", "--nodes", "3", "--sampling", "adaptive"]
        )
        assert args.nodes == 3
        assert args.sampling == "adaptive"


class TestListingStability:
    """Registry-backed listings must be byte-stable run to run.

    The ``--engine`` / ``--sampling`` choice lists and the unknown-name
    error messages all enumerate a registry; a hash-order leak there
    would churn help text and CI logs between otherwise identical runs.
    """

    def test_help_text_is_byte_stable_across_parsers(self):
        assert build_parser().format_help() == build_parser().format_help()

    def test_unknown_engine_error_is_stable_and_sorted(self, capsys):
        errors = []
        for _ in range(2):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["run", "cpu", "--engine", "quantum"])
            errors.append(capsys.readouterr().err)
        assert errors[0] == errors[1]
        assert errors[0].index("array") < errors[0].index("object")

    def test_unknown_sampling_error_is_stable_and_sorted(self, capsys):
        errors = []
        for _ in range(2):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["run", "cpu", "--sampling", "psychic"])
            errors.append(capsys.readouterr().err)
        assert errors[0] == errors[1]
        listing = errors[0]
        assert listing.index("adaptive") < listing.index("full")
        assert listing.index("full") < listing.index("threshold-aware")

    def test_unknown_algorithm_listing_is_sorted(self):
        from repro.core.registry import make_policy, registered_policies
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError) as excinfo:
            make_policy("magic")
        message = str(excinfo.value)
        names = registered_policies()
        assert list(names) == sorted(names)
        assert str(names) in message  # the full sorted tuple, verbatim
        assert build_parser().parse_args(["top", "cpu"]).nodes is None


class TestCommands:
    def test_trace_command(self, capsys):
        assert main(["trace", "--vms", "5", "--duration", "120", "--interval", "30", "--stride", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "cpu %" in out

    def test_section3_network_only(self, capsys):
        assert main(["section3", "--which", "network"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 2" not in out

    def test_section3_memory_only(self, capsys):
        assert main(["section3", "--which", "memory"]) == 0
        out = capsys.readouterr().out
        assert "Section III-B" in out

    def test_run_with_costs(self, capsys):
        assert main(
            ["run", "cpu", "--burst", "low", "--algorithms", "kubernetes", "hybrid", "--costs"]
        ) == 0
        out = capsys.readouterr().out
        assert "run cost" in out
        assert "kWh" in out
        assert "speedup of hybrid over kubernetes" in out

    def test_run_with_timeline(self, capsys):
        assert main(
            ["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "cpu used" in out
        assert "allocation efficiency" in out

    def test_run_with_events(self, capsys):
        assert main(
            ["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--events", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "scaling events: hybrid" in out
        assert "decision mix:" in out

    def test_run_parallel_jobs_match_serial(self, capsys, tmp_path):
        serial_dump = tmp_path / "serial.json"
        parallel_dump = tmp_path / "parallel.json"
        base = ["run", "cpu", "--burst", "low", "--algorithms", "kubernetes", "hybrid"]
        assert main(base + ["--json", str(serial_dump)]) == 0
        assert main(base + ["--jobs", "2", "--json", str(parallel_dump)]) == 0
        capsys.readouterr()
        assert parallel_dump.read_text() == serial_dump.read_text()

    def test_run_cache_dir_resumes(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = [
            "run", "cpu", "--burst", "low", "--algorithms", "hybrid",
            "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "(cached)" not in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "(cached)" in second.err
        assert second.out == first.out  # same table from the cached shard

    def test_reproduce_single_figure(self, capsys):
        assert main(["reproduce", "--figures", "fig6b"]) == 0
        out = capsys.readouterr().out
        assert "fig6b" in out
        assert "Figure 2" in out  # section III curves always included
        assert "vs kubernetes" in out

    def test_reproduce_with_jobs_and_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = [
            "reproduce", "--figures", "fig6a", "--jobs", "2",
            "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "fig6a" in first.out
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "(cached)" in second.err
        assert second.out == first.out

    def test_reproduce_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--figures", "fig99"])

    def test_run_with_json_dump(self, capsys, tmp_path):
        out_file = tmp_path / "runs.json"
        assert main(
            ["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--json", str(out_file)]
        ) == 0
        import json

        payload = json.loads(out_file.read_text())
        assert "hybrid" in payload
        assert payload["hybrid"]["algorithm"] == "hybrid"

    def test_inspect_round_trip(self, capsys, tmp_path):
        dump = tmp_path / "runs.json"
        main(["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--json", str(dump)])
        capsys.readouterr()  # discard the run output
        assert main(["inspect", str(dump), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out
        assert "avg resp" in out
        assert "allocation efficiency" in out


class TestObservabilityCommands:
    def test_run_trace_out_writes_parseable_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--trace-out", str(trace)]
        ) == 0
        err = capsys.readouterr().err
        assert "decision spans" in err

        from repro.obs import read_trace_jsonl

        spans = read_trace_jsonl(trace)
        assert spans, "expected decision spans from the probe run"
        # Every emitted action names its triggering metric value/threshold.
        for span in spans:
            for action in span.actions:
                assert action.metric

    def test_run_trace_out_splits_per_algorithm(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(
            [
                "run", "cpu", "--burst", "low",
                "--algorithms", "kubernetes", "hybrid",
                "--trace-out", str(trace),
            ]
        ) == 0
        assert (tmp_path / "t.kubernetes.jsonl").exists()
        assert (tmp_path / "t.hybrid.jsonl").exists()

    def test_explain_renders_a_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["explain", str(trace), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "policy=hybrid" in out
        assert "threshold" in out
        assert "ticks" in out

    def test_explain_actions_only(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(["run", "cpu", "--burst", "low", "--algorithms", "hybrid", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["explain", str(trace), "--actions-only"]) == 0
        out = capsys.readouterr().out
        assert "  metric " not in out  # evidence lines suppressed
        assert "ticks" in out

    def test_explain_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["explain", str(tmp_path / "missing.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_renders_phase_table(self, capsys):
        assert main(
            ["profile", "--workload", "cpu", "--burst", "low", "--duration", "60"]
        ) == 0
        out = capsys.readouterr().out
        assert "actor:" in out
        assert "share" in out

    def test_profile_json_report(self, capsys, tmp_path):
        report = tmp_path / "phases.json"
        assert main(
            [
                "profile", "--workload", "cpu", "--burst", "low",
                "--duration", "60", "--json", str(report),
            ]
        ) == 0
        import json

        payload = json.loads(report.read_text())
        assert payload["steps"] > 0
        assert any(name.startswith("actor:") for name in payload["phases"])
        assert payload["counters"].get("metrics.steps", 0) > 0


class TestTelemetryCommands:
    def test_run_metrics_out_writes_parseable_snapshot(self, capsys, tmp_path):
        snap = tmp_path / "m.jsonl"
        assert main(
            [
                "run", "cpu", "--burst", "low",
                "--algorithms", "hybrid",
                "--metrics-out", str(snap),
            ]
        ) == 0
        assert "metric snapshot lines" in capsys.readouterr().err

        from repro.telemetry import read_snapshot_jsonl

        lines = read_snapshot_jsonl(snap)
        assert lines, "expected metric lines from the probe run"
        names = {line.get("name") for line in lines}
        assert "sim_steps" in names
        assert "requests_completed" in names

    def test_run_openmetrics_out_writes_valid_exposition(self, tmp_path):
        out = tmp_path / "m.om"
        assert main(
            [
                "run", "cpu", "--burst", "low",
                "--algorithms", "hybrid",
                "--openmetrics-out", str(out),
            ]
        ) == 0

        from repro.telemetry import parse_openmetrics

        families = parse_openmetrics(out.read_text())
        assert "sim_steps" in families
        assert "request_response_seconds" in families

    def test_run_metrics_out_splits_per_algorithm(self, tmp_path):
        snap = tmp_path / "m.jsonl"
        assert main(
            [
                "run", "cpu", "--burst", "low",
                "--algorithms", "kubernetes", "hybrid",
                "--metrics-out", str(snap),
            ]
        ) == 0
        assert (tmp_path / "m.kubernetes.jsonl").exists()
        assert (tmp_path / "m.hybrid.jsonl").exists()

    def test_top_renders_frames(self, capsys):
        assert main(
            ["top", "cpu", "--burst", "low", "--duration", "60", "--interval", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "NODE" in out
        assert "SERVICE" in out
        assert out.count("SLO") >= 2  # one panel per frame

    def test_top_nodes_truncates_the_node_panel(self, capsys):
        assert main(
            [
                "top", "cpu", "--burst", "low", "--duration", "60",
                "--interval", "30", "--nodes", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "more node" in out
        # Only the K busiest node rows render per frame.
        node_rows = [line for line in out.splitlines() if line.startswith("node-")]
        frames = out.count("NODE")
        assert len(node_rows) == 2 * frames

    def test_run_with_adaptive_sampling_reports_the_budget(self, capsys):
        assert main(
            [
                "run", "cpu", "--burst", "low",
                "--algorithms", "hybrid",
                "--sampling", "adaptive",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "sampling adaptive: observed" in captured.err
        assert "staleness bound" in captured.err
        assert "avg resp" in captured.out  # the normal comparison table still renders

    def test_sanitize_parser_defaults(self):
        args = build_parser().parse_args(["sanitize"])
        assert args.out == "BENCH_sanitizer_report.json"

    def test_sanitize_writes_report_and_passes(self, capsys, tmp_path):
        out = tmp_path / "san_report.json"
        assert main(["sanitize", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.san-check/1"
        assert report["ok"] is True
        assert report["violations"] == 0
        assert "PASS" in capsys.readouterr().out


class TestLintAndAnalyzeCommands:
    """Exit-code contract (0 clean / 1 violations / 2 usage error),
    the ``catalogue_version`` report field, and the ``analyze`` verb."""

    #: Worker fixture: clean under the per-file rules, but its
    #: ``os.environ`` write is a PAR002 for the interprocedural pass.
    WORKER = (
        "import os\n\n\n"
        "def run_shard_payload(payload: dict) -> dict:\n"
        '    os.environ["SEED"] = "1"\n'
        "    return payload\n"
    )

    def _write(self, root, rel, source):
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return path

    def test_lint_exit_zero_and_catalogue_version(self, tmp_path, capsys):
        from repro.devtools.rules import CATALOGUE_VERSION

        self._write(tmp_path, "src/repro/sim/ok.py", "X: int = 1\n")
        assert main(["lint", "src", "--root", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["catalogue_version"] == CATALOGUE_VERSION
        assert payload["violation_count"] == 0

    def test_lint_exit_one_on_violation(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "src/repro/cluster/bad.py",
            "import numpy as np\n\ndef make() -> object:\n    return np.random.default_rng(0)\n",
        )
        assert main(["lint", "src", "--root", str(tmp_path)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_lint_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["lint", "no-such-dir", "--root", str(tmp_path)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_lint_flow_flag_adds_interprocedural_rules(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/parallel/worker.py", self.WORKER)
        assert main(["lint", "src", "--root", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lint", "src", "--root", str(tmp_path), "--flow"]) == 1
        assert "PAR002" in capsys.readouterr().out

    def test_analyze_parser_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.format == "text"
        assert args.report is None
        assert args.baseline is None
        assert args.write_baseline is False

    def test_analyze_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/sim/ok.py", "X: int = 1\n")
        assert main(["analyze", "src/repro", "--root", str(tmp_path)]) == 0
        assert "0 unbaselined" in capsys.readouterr().out

    def test_analyze_exit_one_on_findings(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/parallel/worker.py", self.WORKER)
        assert main(["analyze", "src/repro", "--root", str(tmp_path)]) == 1
        assert "PAR002" in capsys.readouterr().out

    def test_analyze_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main(["analyze", "no-such-dir", "--root", str(tmp_path)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_analyze_writes_flow_report(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/parallel/worker.py", self.WORKER)
        report = tmp_path / "flow.json"
        main(["analyze", "src/repro", "--root", str(tmp_path), "--report", str(report)])
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro.flow/2"
        assert payload["summary"]["unbaselined"] >= 1
        assert "tainted_path_inventory" in payload
        assert "timings" in payload  # CLI merges phase timings into the artifact
