"""Edge-case tests across the platform: churn, adoption, migration plumbing."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.cluster.stress import CpuStressContainer
from repro.core.actions import MigrateReplica
from repro.dockersim.api import DockerClient
from repro.dockersim.daemon import DockerDaemon
from repro.errors import ClusterError, ContainerStateError, PolicyError
from repro.platform.load_balancer import LoadBalancer, RoutingPolicy
from repro.platform.registry import ServiceRegistry
from repro.sim.clock import SimClock
from repro.workloads.requests import Request

from tests.conftest import make_container


@pytest.fixture
def platform(overheads):
    cluster = Cluster(overheads)
    for i in range(2):
        cluster.add_node(Node(f"n{i}", ResourceVector(8.0, 16384.0, 1000.0), overheads))
    cluster.register_service(MicroserviceSpec(name="svc"))
    client = DockerClient(cluster)
    return cluster, client


def request(service="svc", timeout=30.0):
    return Request(service=service, arrival_time=0.0, cpu_work=1.0, timeout=timeout)


class TestRoutingChurn:
    def test_round_robin_survives_replica_removal(self, platform, overheads):
        cluster, client = platform
        registry = ServiceRegistry(cluster)
        lb = LoadBalancer(registry, overheads, failure_sink=lambda r: None,
                          policy=RoutingPolicy.ROUND_ROBIN)
        a = client.run_replica("svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)
        b = client.run_replica("svc", "n1", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)
        for _ in range(3):
            lb.submit(request())
        client.remove_replica(b.container_id, 1.0)
        # The stale round-robin counter must not crash or mis-route.
        for _ in range(3):
            lb.submit(request())
        assert len(a.inflight) == 5  # 2 + all 3 after removal; 1 died with b

    def test_routing_resumes_after_scale_from_zero(self, platform, overheads):
        cluster, client = platform
        registry = ServiceRegistry(cluster)
        failures = []
        lb = LoadBalancer(registry, overheads, failure_sink=failures.append)
        first = client.run_replica("svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)
        client.remove_replica(first.container_id, 0.0)
        lb.submit(request(timeout=60.0))
        assert lb.backlog() == 1
        replacement = client.run_replica(
            "svc", "n1", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=1.0
        )
        clock = SimClock(dt=1.0)
        clock.advance()
        lb.on_step(clock)
        assert lb.backlog() == 0
        assert len(replacement.inflight) == 1
        assert failures == []


class TestDaemonAdoption:
    def test_adopt_hosts_stress_container(self, overheads):
        node = Node("n0", ResourceVector(4.0, 8192.0, 1000.0), overheads)
        daemon = DockerDaemon(node)
        stress = CpuStressContainer("stress", cpu_request=1.0, overheads=overheads)
        daemon.adopt(stress)
        assert stress in daemon.ps()
        assert node.nic.is_attached(stress.container_id)

    def test_adopt_enforces_capacity(self, overheads):
        node = Node("n0", ResourceVector(4.0, 8192.0, 1000.0), overheads)
        daemon = DockerDaemon(node)
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            daemon.adopt(CpuStressContainer("huge", cpu_request=8.0, overheads=overheads))


class TestRegistrySpec:
    def test_spec_lookup(self, platform):
        cluster, _ = platform
        registry = ServiceRegistry(cluster)
        assert registry.spec("svc").name == "svc"
        with pytest.raises(ClusterError):
            registry.spec("ghost")


class TestMigrationPlumbing:
    def test_action_validation(self):
        with pytest.raises(PolicyError):
            MigrateReplica("", "n1")
        with pytest.raises(PolicyError):
            MigrateReplica("c1", "")

    def test_freeze_validation(self, overheads):
        container = make_container(overheads=overheads)
        with pytest.raises(ContainerStateError):
            container.freeze(-1.0)
        container.terminate(1.0)
        with pytest.raises(ContainerStateError):
            container.freeze(1.0)

    def test_detach_unknown_rejected(self, overheads):
        node = Node("n0", ResourceVector(4.0, 8192.0, 1000.0), overheads)
        with pytest.raises(ClusterError):
            node.detach_container("ghost")

    def test_monitor_counts_migrations(self, overheads):
        import tests.test_monitor as tm

        policy = tm.ScriptedPolicy()
        _, cluster, client, managers, _, monitor = tm.build_platform(overheads, policy)
        container = client.run_replica(
            "svc", "node-00", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        policy.batches = [[MigrateReplica(container.container_id, "node-01")]]
        clock = SimClock(dt=1.0)
        tm.run_steps(cluster, managers, monitor, clock, 5)
        assert monitor.log.migrations == 1
        assert client.node_name_of(container.container_id) == "node-01"

    def test_migration_keeps_reservation_accounting(self, platform):
        cluster, client = platform
        container = client.run_replica(
            "svc", "n0", cpu_request=2.0, mem_limit=1024.0, net_rate=100.0, now=0.0
        )
        before_total = cluster.total_allocated()
        client.migrate_replica(container.container_id, "n1", 1.0)
        assert cluster.total_allocated() == before_total
        assert cluster.node("n0").allocated().cpu == 0.0
        assert cluster.node("n1").allocated().cpu == pytest.approx(2.0)
