"""Tests for microservice resource profiles."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    CPU_BOUND,
    MEMORY_BOUND,
    MIXED,
    NETWORK_BOUND,
    PROFILES,
    MicroserviceProfile,
    get_profile,
)


class TestCanonicalProfiles:
    def test_registry_complete(self):
        # The paper's four profiles plus the disk extension.
        assert set(PROFILES) == {
            "cpu_bound",
            "memory_bound",
            "network_bound",
            "mixed",
            "disk_bound",
        }

    def test_get_profile(self):
        assert get_profile("cpu_bound") is CPU_BOUND
        with pytest.raises(WorkloadError):
            get_profile("gpu_bound")

    def test_cpu_bound_is_cpu_dominant(self):
        assert CPU_BOUND.cpu_per_request > MEMORY_BOUND.cpu_per_request
        assert CPU_BOUND.mem_per_request < MEMORY_BOUND.mem_per_request

    def test_network_bound_is_network_dominant(self):
        assert NETWORK_BOUND.net_per_request > CPU_BOUND.net_per_request * 10

    def test_mixed_uses_both(self):
        assert MIXED.cpu_per_request > 0.05
        assert MIXED.mem_per_request > 30.0


class TestRequestStamping:
    def test_demands_near_profile_means(self):
        rng = np.random.default_rng(0)
        requests = [MIXED.make_request("svc", 0.0, rng) for _ in range(2000)]
        assert np.mean([r.cpu_work for r in requests]) == pytest.approx(
            MIXED.cpu_per_request, rel=0.05
        )
        assert np.mean([r.mem_footprint for r in requests]) == pytest.approx(
            MIXED.mem_per_request, rel=0.05
        )

    def test_demands_positive(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            request = CPU_BOUND.make_request("svc", 0.0, rng)
            assert request.cpu_work > 0
            assert request.mem_footprint > 0

    def test_zero_mean_stays_zero(self):
        profile = MicroserviceProfile(name="p", cpu_per_request=0.0, mem_per_request=1.0, net_per_request=0.0)
        rng = np.random.default_rng(2)
        request = profile.make_request("svc", 0.0, rng)
        assert request.cpu_work == 0.0
        assert request.net_mbits == 0.0

    def test_no_jitter_is_exact(self):
        profile = MicroserviceProfile(
            name="p", cpu_per_request=0.25, mem_per_request=10.0, net_per_request=1.0, jitter_sigma=0.0
        )
        rng = np.random.default_rng(3)
        request = profile.make_request("svc", 0.0, rng)
        assert request.cpu_work == 0.25

    def test_timeout_propagates(self):
        profile = MicroserviceProfile(
            name="p", cpu_per_request=0.1, mem_per_request=1.0, net_per_request=0.0, timeout=7.0
        )
        request = profile.make_request("svc", 0.0, np.random.default_rng(0))
        assert request.timeout == 7.0

    def test_arrival_time_stamped(self):
        request = CPU_BOUND.make_request("svc", 42.0, np.random.default_rng(0))
        assert request.arrival_time == 42.0
        assert request.service == "svc"


class TestValidation:
    def test_negative_demand_rejected(self):
        with pytest.raises(WorkloadError):
            MicroserviceProfile(name="p", cpu_per_request=-1.0, mem_per_request=0.0, net_per_request=0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(WorkloadError):
            MicroserviceProfile(
                name="p", cpu_per_request=1.0, mem_per_request=0.0, net_per_request=0.0, jitter_sigma=-0.5
            )

    def test_bad_timeout_rejected(self):
        with pytest.raises(WorkloadError):
            MicroserviceProfile(
                name="p", cpu_per_request=1.0, mem_per_request=0.0, net_per_request=0.0, timeout=0.0
            )
