"""Tests (incl. property-based) for load patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import WorkloadError
from repro.workloads.patterns import ConstantLoad, HighBurstLoad, LowBurstLoad, TraceLoad

times = st.floats(0.0, 10_000.0, allow_nan=False)


class TestConstant:
    def test_flat(self):
        load = ConstantLoad(5.0)
        assert load.rate(0.0) == load.rate(123.4) == 5.0

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantLoad(-1.0)

    def test_mean(self):
        assert ConstantLoad(5.0).mean_rate(100.0) == pytest.approx(5.0)


class TestLowBurst:
    def test_oscillates_around_base(self):
        load = LowBurstLoad(base=10.0, amplitude=0.3, period=100.0)
        rates = [load.rate(t) for t in range(0, 100)]
        assert max(rates) == pytest.approx(13.0, rel=0.01)
        assert min(rates) == pytest.approx(7.0, rel=0.01)

    def test_mean_near_base(self):
        load = LowBurstLoad(base=10.0, amplitude=0.3, period=50.0)
        assert load.mean_rate(500.0) == pytest.approx(10.0, rel=0.02)

    def test_phase_shifts_curve(self):
        a = LowBurstLoad(base=10.0, period=100.0, phase=0.0)
        b = LowBurstLoad(base=10.0, period=100.0, phase=25.0)
        assert a.rate(0.0) != b.rate(0.0)
        assert a.rate(25.0) == pytest.approx(b.rate(0.0))

    @given(times)
    def test_never_negative(self, t):
        assert LowBurstLoad(base=5.0, amplitude=1.0, period=60.0).rate(t) >= 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LowBurstLoad(base=-1.0)
        with pytest.raises(WorkloadError):
            LowBurstLoad(base=1.0, amplitude=1.5)
        with pytest.raises(WorkloadError):
            LowBurstLoad(base=1.0, period=0.0)


class TestHighBurst:
    def test_trough_and_peak(self):
        load = HighBurstLoad(base=2.0, peak=20.0, period=100.0, duty=0.25, ramp=0.0)
        assert load.rate(10.0) == 20.0  # inside the spike
        assert load.rate(50.0) == 2.0  # in the trough

    def test_ramp_edges(self):
        load = HighBurstLoad(base=0.0, peak=10.0, period=100.0, duty=0.2, ramp=5.0)
        assert load.rate(0.0) == pytest.approx(0.0)
        assert load.rate(2.5) == pytest.approx(5.0)
        assert load.rate(10.0) == pytest.approx(10.0)
        assert load.rate(17.5) == pytest.approx(5.0)

    def test_periodicity(self):
        load = HighBurstLoad(base=1.0, peak=9.0, period=60.0, duty=0.3)
        for t in (0.0, 13.0, 44.0):
            assert load.rate(t) == pytest.approx(load.rate(t + 60.0))

    def test_mean_between_base_and_peak(self):
        load = HighBurstLoad(base=2.0, peak=20.0, period=100.0, duty=0.25)
        mean = load.mean_rate(1000.0)
        assert 2.0 < mean < 20.0

    @given(times)
    def test_rate_bounded(self, t):
        load = HighBurstLoad(base=2.0, peak=20.0, period=120.0, duty=0.25, ramp=2.0)
        assert 2.0 - 1e-9 <= load.rate(t) <= 20.0 + 1e-9

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HighBurstLoad(base=5.0, peak=2.0)
        with pytest.raises(WorkloadError):
            HighBurstLoad(base=1.0, peak=2.0, duty=0.0)
        with pytest.raises(WorkloadError):
            HighBurstLoad(base=1.0, peak=2.0, period=100.0, duty=0.1, ramp=50.0)


class TestTrace:
    def test_step_interpolation(self):
        load = TraceLoad([0.0, 10.0, 20.0], [1.0, 5.0, 2.0], loop=False)
        assert load.rate(0.0) == 1.0
        assert load.rate(9.99) == 1.0
        assert load.rate(10.0) == 5.0
        assert load.rate(25.0) == 2.0  # holds last value

    def test_looping(self):
        load = TraceLoad([0.0, 10.0], [1.0, 5.0], loop=True)
        assert load.duration == 20.0
        assert load.rate(20.0) == 1.0  # wrapped around
        assert load.rate(35.0) == 5.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceLoad([], [])
        with pytest.raises(WorkloadError):
            TraceLoad([1.0], [2.0])  # must start at 0
        with pytest.raises(WorkloadError):
            TraceLoad([0.0, 0.0], [1.0, 2.0])  # strictly increasing
        with pytest.raises(WorkloadError):
            TraceLoad([0.0, 1.0], [1.0, -2.0])  # non-negative rates
        with pytest.raises(WorkloadError):
            TraceLoad([0.0], [1.0]).rate(-1.0)


class TestDiurnal:
    def make(self):
        from repro.workloads.patterns import DiurnalLoad

        return DiurnalLoad(trough=2.0, peak=10.0, day_length=240.0, peak_at=0.5)

    def test_peak_and_trough(self):
        load = self.make()
        assert load.rate(120.0) == pytest.approx(10.0)  # peak_at 0.5 of 240
        assert load.rate(0.0) == pytest.approx(2.0)

    def test_periodic(self):
        load = self.make()
        for t in (10.0, 57.0, 200.0):
            assert load.rate(t) == pytest.approx(load.rate(t + 240.0))

    @given(times)
    def test_bounded(self, t):
        load = self.make()
        assert 2.0 - 1e-9 <= load.rate(t) <= 10.0 + 1e-9

    def test_validation(self):
        from repro.workloads.patterns import DiurnalLoad

        with pytest.raises(WorkloadError):
            DiurnalLoad(trough=5.0, peak=2.0)
        with pytest.raises(WorkloadError):
            DiurnalLoad(trough=1.0, peak=2.0, peak_at=1.5)


class TestFlashCrowd:
    def make(self):
        from repro.workloads.patterns import FlashCrowdLoad

        return FlashCrowdLoad(base=1.0, peak=50.0, onset=100.0, rise_tau=10.0, decay_tau=60.0)

    def test_quiet_before_onset(self):
        load = self.make()
        assert load.rate(0.0) == 1.0
        assert load.rate(99.9) == 1.0

    def test_ramps_to_peak(self):
        load = self.make()
        crest = load.rate(150.0)  # 5 taus after onset
        assert crest == pytest.approx(50.0, rel=0.02)

    def test_decays_after_crest(self):
        load = self.make()
        assert load.rate(200.0) < load.rate(150.0)
        assert load.rate(1000.0) == pytest.approx(1.0, abs=0.5)

    def test_monotone_rise(self):
        load = self.make()
        samples = [load.rate(t) for t in range(100, 150, 5)]
        assert samples == sorted(samples)

    def test_validation(self):
        from repro.workloads.patterns import FlashCrowdLoad

        with pytest.raises(WorkloadError):
            FlashCrowdLoad(base=2.0, peak=1.0, onset=0.0)
        with pytest.raises(WorkloadError):
            FlashCrowdLoad(base=1.0, peak=2.0, onset=0.0, rise_tau=0.0)


class TestComposite:
    def test_sums_parts(self):
        from repro.workloads.patterns import CompositeLoad

        load = CompositeLoad([ConstantLoad(2.0), ConstantLoad(3.0)])
        assert load.rate(17.0) == 5.0

    def test_empty_rejected(self):
        from repro.workloads.patterns import CompositeLoad

        with pytest.raises(WorkloadError):
            CompositeLoad([])

    def test_diurnal_plus_flash(self):
        from repro.workloads.patterns import CompositeLoad, DiurnalLoad, FlashCrowdLoad

        load = CompositeLoad(
            [
                DiurnalLoad(trough=2.0, peak=8.0, day_length=600.0),
                FlashCrowdLoad(base=0.0, peak=30.0, onset=100.0),
            ]
        )
        assert load.rate(150.0) > load.rate(50.0)  # the crowd shows up
