"""Tests for the node manager (stats windows + vertical execution)."""

import pytest

from repro.dockersim.daemon import DockerDaemon
from repro.errors import ContainerNotFound
from repro.platform.node_manager import NodeManager
from repro.sim.clock import SimClock
from repro.workloads.requests import Request


@pytest.fixture
def manager(node):
    return NodeManager(DockerDaemon(node), window_horizon=30.0)


def run_container(manager, service="svc", cpu=0.5):
    return manager.daemon.run(
        service, 0, cpu_request=cpu, mem_limit=512.0, net_rate=50.0, now=0.0
    )


def sample_steps(manager, node, steps: int, dt: float = 1.0, work: bool = False):
    clock = SimClock(dt=dt)
    for _ in range(steps):
        clock.advance()
        node.step(clock.now, dt)
        manager.on_step(clock)
    return clock


class TestSampling:
    def test_collects_samples(self, manager, node):
        container = run_container(manager)
        sample_steps(manager, node, 5)
        assert container.container_id in manager.tracked_containers()
        stats = manager.mean_stats(container.container_id, 10.0)
        assert stats.cpu_request == 0.5

    def test_mean_over_window(self, manager, node):
        container = run_container(manager)
        container.accept(Request(service="svc", arrival_time=0.0, cpu_work=1000.0), 0.0)
        sample_steps(manager, node, 10)
        stats = manager.mean_stats(container.container_id, 5.0)
        assert stats.cpu_usage > 0.0

    def test_departed_containers_pruned(self, manager, node):
        container = run_container(manager)
        sample_steps(manager, node, 2)
        manager.daemon.remove(container.container_id, 2.0)
        sample_steps(manager, node, 1)
        assert container.container_id not in manager.tracked_containers()
        with pytest.raises(ContainerNotFound):
            manager.mean_stats(container.container_id, 5.0)

    def test_unknown_container_rejected(self, manager):
        with pytest.raises(ContainerNotFound):
            manager.mean_stats("ghost", 5.0)

    def test_pending_containers_not_sampled_until_running(self, manager, node):
        container = manager.daemon.run(
            "svc", 0, cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0, boot_delay=100.0
        )
        sample_steps(manager, node, 2)
        # PENDING containers still occupy resources and appear in ps(), so
        # they are tracked (with zero usage) — matching `docker stats`.
        assert container.container_id in manager.tracked_containers()


class TestVerticalExecution:
    def test_apply_vertical(self, manager, node):
        container = run_container(manager)
        manager.apply_vertical(container.container_id, cpu_request=2.0, mem_limit=1024.0)
        assert container.cpu_request == 2.0
        assert container.mem_limit == 1024.0

    def test_apply_vertical_network(self, manager, node):
        container = run_container(manager)
        manager.apply_vertical(container.container_id, net_rate=200.0)
        assert container.net_rate == 200.0
