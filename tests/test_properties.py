"""Cross-cutting property-based tests on whole-system invariants.

These exercise short end-to-end simulations under randomized workload
parameters and assert the invariants that must hold regardless of policy or
load: request conservation, capacity conservation, determinism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import HyScaleCpu, HyScaleCpuMem, KubernetesHpa, Simulation, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.workloads import CPU_BOUND, MIXED, ConstantLoad, ServiceLoad

POLICIES = {
    "kubernetes": KubernetesHpa,
    "hybrid": HyScaleCpu,
    "hybridmem": HyScaleCpuMem,
}

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "rate": st.floats(1.0, 14.0, allow_nan=False),
        "policy": st.sampled_from(sorted(POLICIES)),
        "profile": st.sampled_from(["cpu", "mixed"]),
    }
)


def build(params, duration=30.0):
    profile = CPU_BOUND if params["profile"] == "cpu" else MIXED
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=3), seed=params["seed"])
    specs = [MicroserviceSpec(name="svc", max_replicas=6)]
    loads = [ServiceLoad("svc", profile, ConstantLoad(params["rate"]))]
    sim = Simulation.build(
        config=config, specs=specs, loads=loads, policy=POLICIES[params["policy"]]()
    )
    sim.engine.run_for(duration)
    return sim


class TestSystemInvariants:
    @settings(max_examples=12, deadline=None)
    @given(scenario)
    def test_request_conservation(self, params):
        """Every generated request is exactly one of: finished-and-recorded,
        in flight, or parked in the LB backlog."""
        sim = build(params)
        recorded = sim.collector.total_requests
        inflight = sum(
            len(c.inflight)
            for node in sim.cluster.nodes.values()
            for c in node.active_containers()
        )
        backlog = sim.load_balancer.backlog()
        assert recorded + inflight + backlog == sim.generator.total_generated

    @settings(max_examples=12, deadline=None)
    @given(scenario)
    def test_reservations_never_exceed_capacity(self, params):
        sim = build(params)
        for node in sim.cluster.nodes.values():
            allocated = node.allocated()
            assert allocated.fits_within(node.capacity, tolerance=1e-6), (
                f"{node.name} over-allocated: {allocated}"
            )

    @settings(max_examples=12, deadline=None)
    @given(scenario)
    def test_replica_bounds_respected(self, params):
        sim = build(params)
        for service in sim.cluster.services.values():
            assert service.replica_count <= service.spec.max_replicas

    @settings(max_examples=8, deadline=None)
    @given(scenario)
    def test_determinism(self, params):
        a = build(params, duration=20.0).summary()
        b = build(params, duration=20.0).summary()
        assert a.total_requests == b.total_requests
        assert a.avg_response_time == pytest.approx(b.avg_response_time)
        assert a.horizontal_scale_ups == b.horizontal_scale_ups

    @settings(max_examples=12, deadline=None)
    @given(scenario)
    def test_failure_accounting_consistent(self, params):
        summary = build(params).summary()
        assert summary.failed == summary.removal_failures + summary.connection_failures
        assert summary.completed + summary.failed == summary.total_requests
        assert 0.0 <= summary.availability <= 1.0
