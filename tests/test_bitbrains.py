"""Tests for the synthetic Bitbrains trace generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.bitbrains import (
    BitbrainsTrace,
    VmTrace,
    bitbrains_service_loads,
    generate_bitbrains_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_bitbrains_trace(n_vms=40, duration=1200.0, interval=30.0, seed=7)


class TestGeneration:
    def test_shape(self, trace):
        assert trace.n_vms == 40
        assert trace.n_samples == 40  # 1200 / 30
        assert trace.duration == 1200.0

    def test_deterministic(self):
        a = generate_bitbrains_trace(n_vms=5, duration=300.0, interval=30.0, seed=3)
        b = generate_bitbrains_trace(n_vms=5, duration=300.0, interval=30.0, seed=3)
        for va, vb in zip(a.vms, b.vms):
            assert np.array_equal(va.cpu_pct, vb.cpu_pct)
            assert np.array_equal(va.mem_frac, vb.mem_frac)

    def test_seed_changes_trace(self):
        a = generate_bitbrains_trace(n_vms=5, duration=300.0, interval=30.0, seed=1)
        b = generate_bitbrains_trace(n_vms=5, duration=300.0, interval=30.0, seed=2)
        assert not np.array_equal(a.vms[0].cpu_pct, b.vms[0].cpu_pct)

    def test_cpu_within_bounds(self, trace):
        for vm in trace.vms:
            assert vm.cpu_pct.min() >= 0.0
            assert vm.cpu_pct.max() <= 100.0

    def test_mem_within_bounds(self, trace):
        for vm in trace.vms:
            assert vm.mem_frac.min() >= 0.05
            assert vm.mem_frac.max() <= 0.95

    def test_figure9_shape_cpu_spikier_than_mem(self, trace):
        """Figure 9: aggregate CPU is jagged, memory is smooth — compare
        normalized step-to-step variation."""
        cpu = trace.aggregate_cpu()
        mem = trace.aggregate_mem()
        cpu_roughness = np.abs(np.diff(cpu)).mean() / max(cpu.mean(), 1e-9)
        mem_roughness = np.abs(np.diff(mem)).mean() / max(mem.mean(), 1e-9)
        assert cpu_roughness > 2.0 * mem_roughness

    def test_correlated_bursts_keep_aggregate_spiky(self, trace):
        cpu = trace.aggregate_cpu()
        assert cpu.max() > 1.5 * np.median(cpu)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_bitbrains_trace(n_vms=0)
        with pytest.raises(WorkloadError):
            generate_bitbrains_trace(n_vms=1, duration=10.0, interval=20.0)


class TestDataclasses:
    def test_vm_trace_validation(self):
        with pytest.raises(WorkloadError):
            VmTrace(vm_id=0, interval=30.0, cpu_pct=np.array([1.0]), mem_frac=np.array([0.5, 0.6]))
        with pytest.raises(WorkloadError):
            VmTrace(vm_id=0, interval=0.0, cpu_pct=np.array([1.0]), mem_frac=np.array([0.5]))

    def test_trace_validation(self):
        vm = VmTrace(vm_id=0, interval=30.0, cpu_pct=np.array([1.0]), mem_frac=np.array([0.5]))
        other = VmTrace(vm_id=1, interval=30.0, cpu_pct=np.array([1.0, 2.0]), mem_frac=np.array([0.5, 0.5]))
        with pytest.raises(WorkloadError):
            BitbrainsTrace(vms=(), interval=30.0)
        with pytest.raises(WorkloadError):
            BitbrainsTrace(vms=(vm, other), interval=30.0)

    def test_times(self, trace):
        times = trace.times()
        assert times[0] == 0.0
        assert times[1] == 30.0


class TestServiceLoads:
    def test_partitions_all_vms(self, trace):
        loads = bitbrains_service_loads(trace, n_services=8, base_rate=4.0)
        assert len(loads) == 8
        assert len({l.service for l in loads}) == 8

    def test_rates_follow_group_cpu(self, trace):
        loads = bitbrains_service_loads(trace, n_services=4, base_rate=4.0)
        for load in loads:
            # At 25% group CPU the rate should be the base rate.
            rates = [load.pattern.rate(t) for t in trace.times()]
            assert all(r >= 0 for r in rates)
            assert max(rates) > 0

    def test_memory_scaled_by_group_appetite(self, trace):
        loads = bitbrains_service_loads(trace, n_services=4, base_rate=4.0)
        footprints = {load.profile.mem_per_request for load in loads}
        assert len(footprints) > 1  # groups differ

    def test_validation(self, trace):
        with pytest.raises(WorkloadError):
            bitbrains_service_loads(trace, n_services=0)
        with pytest.raises(WorkloadError):
            bitbrains_service_loads(trace, n_services=trace.n_vms + 1)
        with pytest.raises(WorkloadError):
            bitbrains_service_loads(trace, n_services=2, base_rate=0.0)
