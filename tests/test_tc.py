"""Tests (incl. property-based) for token buckets and HTB."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkSimError
from repro.netsim.tc import HtbClass, HtbQdisc, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert bucket.consume(100.0) == 5.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        bucket.consume(5.0)
        bucket.refill(100.0)
        assert bucket.tokens == 5.0

    def test_sustained_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        bucket.consume(1.0)
        total = 0.0
        for _ in range(10):
            bucket.refill(0.1)
            total += bucket.consume(10.0)
        assert total == pytest.approx(10.0 * 1.0, rel=0.01)

    def test_set_rate_clamps_tokens(self):
        bucket = TokenBucket(rate=100.0)
        bucket.set_rate(10.0)
        assert bucket.tokens <= bucket.burst

    def test_validation(self):
        with pytest.raises(NetworkSimError):
            TokenBucket(rate=-1.0)
        with pytest.raises(NetworkSimError):
            TokenBucket(rate=1.0, burst=0.0)
        with pytest.raises(NetworkSimError):
            TokenBucket(1.0).consume(-1.0)
        with pytest.raises(NetworkSimError):
            TokenBucket(1.0).refill(-1.0)


class TestHtbClassManagement:
    def test_add_get_del(self):
        qdisc = HtbQdisc(1000.0)
        qdisc.add_class("1:1", rate=100.0)
        assert qdisc.get_class("1:1").ceil == 1000.0  # defaults to link capacity
        qdisc.del_class("1:1")
        with pytest.raises(NetworkSimError):
            qdisc.get_class("1:1")

    def test_duplicate_class_rejected(self):
        qdisc = HtbQdisc(1000.0)
        qdisc.add_class("1:1", rate=10.0)
        with pytest.raises(NetworkSimError):
            qdisc.add_class("1:1", rate=20.0)

    def test_change_class(self):
        qdisc = HtbQdisc(1000.0)
        qdisc.add_class("1:1", rate=10.0)
        qdisc.change_class("1:1", rate=50.0, ceil=100.0)
        cls = qdisc.get_class("1:1")
        assert (cls.rate, cls.ceil) == (50.0, 100.0)

    def test_ceil_below_rate_rejected(self):
        with pytest.raises(NetworkSimError):
            HtbClass("x", rate=100.0, ceil=50.0)

    def test_total_guaranteed(self):
        qdisc = HtbQdisc(1000.0)
        qdisc.add_class("a", rate=100.0)
        qdisc.add_class("b", rate=200.0)
        assert qdisc.total_guaranteed() == 300.0


class TestAllocation:
    def test_guarantee_honoured(self):
        qdisc = HtbQdisc(1000.0)
        qdisc.add_class("a", rate=100.0, ceil=100.0)
        qdisc.add_class("b", rate=900.0, ceil=1000.0)
        grants = qdisc.allocate({"a": 100.0, "b": 5000.0})
        assert grants["a"] == pytest.approx(100.0)
        assert grants["b"] == pytest.approx(900.0)

    def test_borrowing_up_to_ceil(self):
        qdisc = HtbQdisc(1000.0)
        qdisc.add_class("a", rate=100.0, ceil=300.0)
        qdisc.add_class("b", rate=100.0, ceil=1000.0)
        grants = qdisc.allocate({"a": 1000.0, "b": 50.0})
        assert grants["a"] == pytest.approx(300.0)  # capped by ceil
        assert grants["b"] == pytest.approx(50.0)

    def test_borrow_proportional_to_rate(self):
        qdisc = HtbQdisc(900.0)
        qdisc.add_class("a", rate=100.0)
        qdisc.add_class("b", rate=200.0)
        grants = qdisc.allocate({"a": 1000.0, "b": 1000.0})
        # Guarantees 100/200, leftover 600 split 1:2.
        assert grants["a"] == pytest.approx(300.0)
        assert grants["b"] == pytest.approx(600.0)

    def test_oversubscribed_guarantees_scale_down(self):
        qdisc = HtbQdisc(100.0)
        qdisc.add_class("a", rate=100.0)
        qdisc.add_class("b", rate=100.0)
        grants = qdisc.allocate({"a": 100.0, "b": 100.0})
        assert grants["a"] == pytest.approx(50.0)
        assert grants["b"] == pytest.approx(50.0)

    def test_unknown_class_rejected(self):
        qdisc = HtbQdisc(100.0)
        with pytest.raises(NetworkSimError):
            qdisc.allocate({"ghost": 10.0})

    def test_negative_offered_rejected(self):
        qdisc = HtbQdisc(100.0)
        qdisc.add_class("a", rate=10.0)
        with pytest.raises(NetworkSimError):
            qdisc.allocate({"a": -1.0})

    def test_idle_classes_get_zero(self):
        qdisc = HtbQdisc(100.0)
        qdisc.add_class("a", rate=10.0)
        assert qdisc.allocate({"a": 0.0}) == {"a": 0.0}


@st.composite
def htb_scenarios(draw):
    n = draw(st.integers(1, 8))
    capacity = draw(st.floats(10.0, 2000.0, allow_nan=False))
    rates = draw(st.lists(st.floats(0.0, 500.0, allow_nan=False), min_size=n, max_size=n))
    offered = draw(st.lists(st.floats(0.0, 3000.0, allow_nan=False), min_size=n, max_size=n))
    return capacity, rates, offered


class TestAllocationProperties:
    @given(htb_scenarios())
    def test_conservation_and_caps(self, scenario):
        capacity, rates, offered = scenario
        qdisc = HtbQdisc(capacity)
        loads = {}
        for i, (rate, load) in enumerate(zip(rates, offered)):
            qdisc.add_class(f"c{i}", rate=min(rate, capacity))
            loads[f"c{i}"] = load
        grants = qdisc.allocate(loads)
        assert sum(grants.values()) <= capacity + 1e-6
        for cid, grant in grants.items():
            assert grant <= loads[cid] + 1e-6
            assert grant <= qdisc.get_class(cid).ceil + 1e-6
            assert grant >= -1e-9

    @given(htb_scenarios())
    def test_work_conserving(self, scenario):
        capacity, rates, offered = scenario
        qdisc = HtbQdisc(capacity)
        loads = {}
        for i, (rate, load) in enumerate(zip(rates, offered)):
            qdisc.add_class(f"c{i}", rate=min(rate, capacity))  # ceil = capacity
            loads[f"c{i}"] = load
        grants = qdisc.allocate(loads)
        expected = min(capacity, sum(loads.values()))
        assert sum(grants.values()) == pytest.approx(expected, rel=1e-6, abs=1e-4)
