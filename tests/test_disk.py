"""Tests for the disk I/O extension: device, phases, and the disk scaler."""

import pytest

from repro.cluster.disk import DiskDevice
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.core.disk import DiskHpa
from repro.core.actions import AddReplica
from repro.errors import ClusterError
from repro.workloads.requests import Request

from tests.conftest import make_container, make_replica, make_service, make_view


def make_request(cpu=0.0, disk=10.0, net=0.0, timeout=60.0) -> Request:
    return Request(
        service="svc", arrival_time=0.0, cpu_work=cpu, mem_footprint=2.0,
        net_mbits=net, disk_mb=disk, timeout=timeout,
    )


class TestDiskDevice:
    def test_single_stream_full_capacity(self):
        device = DiskDevice(capacity=150.0)
        grants = device.transfer({"a": 500.0})
        assert grants["a"] == pytest.approx(150.0)

    def test_grants_capped_by_demand(self):
        device = DiskDevice(capacity=150.0)
        assert device.transfer({"a": 40.0})["a"] == pytest.approx(40.0)

    def test_fair_sharing(self):
        device = DiskDevice(capacity=100.0, seek_penalty=0.0)
        grants = device.transfer({"a": 500.0, "b": 500.0})
        assert grants["a"] == pytest.approx(grants["b"]) == pytest.approx(50.0)

    def test_seek_thrash_reduces_aggregate(self):
        device = DiskDevice(capacity=100.0, seek_penalty=0.2)
        solo = device.transfer({"a": 500.0})["a"]
        duo = sum(device.transfer({"a": 500.0, "b": 500.0}).values())
        assert duo == pytest.approx(solo * 0.8)

    def test_efficiency_floor(self):
        device = DiskDevice(capacity=100.0, seek_penalty=0.2, seek_penalty_cap=0.5)
        assert device.efficiency(100) == 0.5

    def test_work_conserving_when_underloaded(self):
        device = DiskDevice(capacity=100.0, seek_penalty=0.1)
        grants = device.transfer({"a": 10.0, "b": 500.0})
        assert grants["a"] == pytest.approx(10.0)
        assert grants["b"] == pytest.approx(80.0)  # 90 effective - 10

    def test_idle_device(self):
        device = DiskDevice()
        assert device.transfer({"a": 0.0}) == {"a": 0.0}

    def test_validation(self):
        with pytest.raises(ClusterError):
            DiskDevice(capacity=0.0)
        with pytest.raises(ClusterError):
            DiskDevice(seek_penalty=1.0)
        with pytest.raises(ClusterError):
            DiskDevice().transfer({"a": -1.0})


class TestDiskPhase:
    def test_phase_order_cpu_disk_net(self):
        request = Request(service="s", arrival_time=0.0, cpu_work=1.0, disk_mb=5.0, net_mbits=2.0)
        request.assign("c1", 0.0)
        assert request.in_cpu_phase
        request.advance_cpu(1.0)
        assert request.in_disk_phase and not request.in_net_phase
        request.advance_disk(5.0)
        assert request.in_net_phase

    def test_container_disk_progress(self, overheads):
        container = make_container(overheads=overheads)
        request = make_request(disk=10.0)
        container.accept(request, 0.0)
        assert container.disk_demand(1.0) == pytest.approx(10.0)
        container.advance_disk(10.0, 1.0)
        assert request.disk_remaining == 0.0
        assert container.disk_usage == pytest.approx(10.0)

    def test_node_schedules_disk(self, overheads):
        node = Node("d0", ResourceVector(4.0, 8192.0, 1000.0), overheads, disk_capacity=100.0)
        container = make_container(overheads=overheads)
        node.add_container(container)
        request = make_request(disk=50.0)
        container.accept(request, 0.0)
        node.step(1.0, 1.0)
        assert request.disk_done == pytest.approx(100.0 * 1.0, abs=51.0)
        node.step(2.0, 1.0)
        assert request.is_finished or request.disk_remaining == 0.0

    def test_disk_requests_complete(self, overheads):
        node = Node("d0", ResourceVector(4.0, 8192.0, 1000.0), overheads, disk_capacity=150.0)
        container = make_container(overheads=overheads)
        node.add_container(container)
        requests = [make_request(disk=5.0) for _ in range(10)]
        for request in requests:
            container.accept(request, 0.0)
        for t in range(1, 5):
            node.step(float(t), 1.0)
        assert all(r.is_finished for r in requests)

    def test_disk_usage_in_stats(self, overheads):
        from repro.dockersim.daemon import DockerDaemon

        node = Node("d0", ResourceVector(4.0, 8192.0, 1000.0), overheads)
        daemon = DockerDaemon(node)
        container = daemon.run(
            "svc", 0, cpu_request=0.5, mem_limit=512.0, net_rate=10.0, now=0.0, disk_quota=40.0
        )
        container.accept(make_request(disk=100.0), 0.0)
        node.step(1.0, 1.0)
        stats = daemon.stats(container.container_id, 1.0)
        assert stats.disk_usage > 0.0
        assert stats.disk_quota == 40.0
        assert stats.disk_utilization == pytest.approx(stats.disk_usage / 40.0)


class TestDiskHpa:
    def test_scales_on_disk_utilization(self):
        view = make_view(
            services=(
                make_service(
                    "db",
                    (
                        make_replica(
                            "d1",
                            cpu_request=0.5,
                            cpu_usage=0.01,  # CPU idle
                            disk_quota=50.0,
                            disk_usage=75.0,  # 150 % of quota
                        ),
                    ),
                ),
            )
        )
        adds = [a for a in DiskHpa().decide(view) if isinstance(a, AddReplica)]
        assert len(adds) == 2  # util 1.5 / 0.5 target -> 3 desired

    def test_ignores_cpu(self):
        view = make_view(
            services=(
                make_service(
                    "db",
                    (
                        make_replica(
                            "d1", cpu_request=0.5, cpu_usage=4.0,
                            disk_quota=50.0, disk_usage=25.0,
                        ),
                    ),
                ),
            )
        )
        assert DiskHpa().decide(view) == []

    def test_name_and_metric(self):
        assert DiskHpa().name == "disk"
        assert DiskHpa().metric == "disk"


class TestDiskIntegration:
    def test_disk_scaler_beats_hybrid_on_disk_load(self):
        """The extension's headline: spindle bandwidth only grows by
        replication, which only the disk scaler performs."""
        from repro.experiments.configs import disk_bound

        spec = disk_bound("high")
        from dataclasses import replace

        small = replace(spec, duration=120.0, specs=spec.specs[:3], loads=spec.loads[:3])
        disk = small.run("disk")
        hybrid = small.run("hybrid")
        assert disk.avg_response_time < hybrid.avg_response_time
        assert disk.horizontal_scale_ups > 0
        assert hybrid.horizontal_scale_ups == 0
