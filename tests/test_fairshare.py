"""Tests (incl. property-based) for weighted max-min fair sharing."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.fairshare import weighted_fair_share
from repro.errors import SimulationError


class TestBasics:
    def test_empty(self):
        assert weighted_fair_share(4.0, [], []) == []

    def test_zero_capacity(self):
        assert weighted_fair_share(0.0, [1.0, 2.0], [1.0, 1.0]) == [0.0, 0.0]

    def test_single_claimant_capped_by_demand(self):
        assert weighted_fair_share(4.0, [1.5], [1024.0]) == [1.5]

    def test_single_claimant_capped_by_capacity(self):
        assert weighted_fair_share(4.0, [10.0], [1024.0]) == [4.0]

    def test_equal_weights_split_evenly(self):
        allocations = weighted_fair_share(4.0, [10.0, 10.0], [1.0, 1.0])
        assert allocations == [2.0, 2.0]

    def test_docker_shares_example(self):
        # Paper Section III-A: shares 1024 vs 2048 => 1/3 and 2/3.
        allocations = weighted_fair_share(3.0, [10.0, 10.0], [1024.0, 2048.0])
        assert allocations[0] == pytest.approx(1.0)
        assert allocations[1] == pytest.approx(2.0)

    def test_work_conserving_redistribution(self):
        # The small claimant is satisfied; its leftover goes to the big one.
        allocations = weighted_fair_share(4.0, [0.5, 10.0], [1.0, 1.0])
        assert allocations == [0.5, 3.5]

    def test_zero_weight_served_last(self):
        allocations = weighted_fair_share(4.0, [3.0, 3.0], [1.0, 0.0])
        assert allocations[0] == pytest.approx(3.0)
        assert allocations[1] == pytest.approx(1.0)

    def test_zero_weight_only(self):
        allocations = weighted_fair_share(4.0, [1.0, 2.0], [0.0, 0.0])
        assert sum(allocations) == pytest.approx(3.0)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(SimulationError):
            weighted_fair_share(1.0, [1.0], [1.0, 2.0])

    def test_negative_capacity(self):
        with pytest.raises(SimulationError):
            weighted_fair_share(-1.0, [1.0], [1.0])

    def test_negative_demand(self):
        with pytest.raises(SimulationError):
            weighted_fair_share(1.0, [-1.0], [1.0])

    def test_negative_weight(self):
        with pytest.raises(SimulationError):
            weighted_fair_share(1.0, [1.0], [-1.0])


sizes = st.integers(min_value=1, max_value=12)


@st.composite
def fairshare_inputs(draw):
    n = draw(sizes)
    demands = draw(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=n, max_size=n)
    )
    weights = draw(
        st.lists(st.floats(0.0, 4096.0, allow_nan=False), min_size=n, max_size=n)
    )
    capacity = draw(st.floats(0.0, 64.0, allow_nan=False))
    return capacity, demands, weights


class TestProperties:
    @given(fairshare_inputs())
    def test_never_exceeds_demand_or_capacity(self, inputs):
        capacity, demands, weights = inputs
        allocations = weighted_fair_share(capacity, demands, weights)
        assert len(allocations) == len(demands)
        for alloc, demand in zip(allocations, demands):
            assert -1e-9 <= alloc <= demand + 1e-6
        assert sum(allocations) <= capacity + 1e-6

    @given(fairshare_inputs())
    def test_work_conserving(self, inputs):
        capacity, demands, weights = inputs
        allocations = weighted_fair_share(capacity, demands, weights)
        if sum(demands) >= capacity:
            assert sum(allocations) == pytest.approx(capacity, rel=1e-6, abs=1e-6)
        else:
            assert sum(allocations) == pytest.approx(sum(demands), rel=1e-6, abs=1e-6)

    @given(fairshare_inputs())
    def test_weight_monotone_under_saturation(self, inputs):
        capacity, demands, weights = inputs
        # Saturate every claimant so weights fully determine allocations.
        demands = [capacity + 1.0] * len(demands)
        allocations = weighted_fair_share(capacity, demands, weights)
        for (ai, wi) in zip(allocations, weights):
            for (aj, wj) in zip(allocations, weights):
                if wi > wj:
                    assert ai >= aj - 1e-6
