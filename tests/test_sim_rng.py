"""Tests for named, seeded RNG streams."""

import numpy as np

from repro.sim.rng import RngStreams


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngStreams(seed=7).stream("arrivals/svc").random(100)
        b = RngStreams(seed=7).stream("arrivals/svc").random(100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").random(100)
        b = RngStreams(seed=2).stream("x").random(100)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        streams = RngStreams(seed=3)
        a = streams.stream("a").random(100)
        b = streams.stream("b").random(100)
        assert not np.array_equal(a, b)


class TestIsolation:
    def test_adding_a_stream_does_not_perturb_others(self):
        # Draw from "x" alone...
        lone = RngStreams(seed=5)
        expected = lone.stream("x").random(50)
        # ...then interleave draws from a second stream.
        mixed = RngStreams(seed=5)
        mixed.stream("y").random(10)
        got = mixed.stream("x").random(50)
        assert np.array_equal(expected, got)

    def test_stream_identity_is_cached(self):
        streams = RngStreams(seed=0)
        assert streams.stream("a") is streams.stream("a")


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = RngStreams(seed=9).spawn("child").stream("s").random(10)
        b = RngStreams(seed=9).spawn("child").stream("s").random(10)
        assert np.array_equal(a, b)

    def test_spawned_children_are_independent(self):
        parent = RngStreams(seed=9)
        a = parent.spawn("left").stream("s").random(10)
        b = parent.spawn("right").stream("s").random(10)
        assert not np.array_equal(a, b)

    def test_seed_property(self):
        assert RngStreams(seed=42).seed == 42
