"""Tests for the cluster registry and drive loop."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig
from repro.errors import ClusterError
from repro.sim.clock import SimClock
from repro.workloads.requests import FailureReason, Request

from tests.conftest import make_container


@pytest.fixture
def cluster(overheads):
    cluster = Cluster(overheads)
    for i in range(3):
        cluster.add_node(Node(f"n{i}", ResourceVector(4.0, 8192.0, 1000.0), overheads))
    return cluster


class TestRegistry:
    def test_from_config(self):
        cluster = Cluster.from_config(ClusterConfig(worker_nodes=5))
        assert len(cluster.nodes) == 5
        assert cluster.total_capacity().cpu == 20.0

    def test_duplicate_node_rejected(self, cluster, overheads):
        with pytest.raises(ClusterError):
            cluster.add_node(Node("n0", ResourceVector(4, 8192, 1000), overheads))

    def test_register_service(self, cluster):
        cluster.register_service(MicroserviceSpec(name="svc"))
        assert cluster.service("svc").name == "svc"
        with pytest.raises(ClusterError):
            cluster.register_service(MicroserviceSpec(name="svc"))

    def test_unknown_lookups_raise(self, cluster):
        with pytest.raises(ClusterError):
            cluster.node("ghost")
        with pytest.raises(ClusterError):
            cluster.service("ghost")
        with pytest.raises(ClusterError):
            cluster.node_of("ghost-container")

    def test_node_of(self, cluster, overheads):
        container = make_container(overheads=overheads)
        cluster.node("n1").add_container(container)
        assert cluster.node_of(container.container_id).name == "n1"

    def test_sorted_iteration(self, cluster):
        assert [n.name for n in cluster.sorted_nodes()] == ["n0", "n1", "n2"]

    def test_nodes_not_hosting(self, cluster, overheads):
        cluster.node("n0").add_container(make_container("api", overheads=overheads))
        names = [n.name for n in cluster.nodes_not_hosting("api")]
        assert names == ["n1", "n2"]


class TestAggregates:
    def test_totals(self, cluster, overheads):
        cluster.node("n0").add_container(make_container(cpu=1.0, mem=1024.0, net=100.0, overheads=overheads))
        assert cluster.total_allocated() == ResourceVector(1.0, 1024.0, 100.0)
        assert cluster.total_capacity() == ResourceVector(12.0, 3 * 8192.0, 3000.0)


class TestDriveLoop:
    def test_on_step_advances_all_nodes(self, cluster, overheads):
        container = make_container(overheads=overheads)
        cluster.node("n2").add_container(container)
        request = Request(service="svc", arrival_time=0.0, cpu_work=0.1)
        container.accept(request, 0.0)
        clock = SimClock(dt=1.0)
        clock.advance()
        cluster.on_step(clock)
        assert cluster.drain_finished() == [request]

    def test_remove_node_fails_running_requests(self, cluster, overheads):
        service = cluster.register_service(MicroserviceSpec(name="svc"))
        container = make_container("svc", overheads=overheads)
        cluster.node("n1").add_container(container)
        service.track(container)
        request = Request(service="svc", arrival_time=0.0, cpu_work=100.0)
        container.accept(request, 0.0)

        casualties = cluster.remove_node("n1", now=5.0)
        assert request in casualties
        assert request.failure_reason is FailureReason.REMOVAL
        assert "n1" not in cluster.nodes
        assert service.replica_count == 0
