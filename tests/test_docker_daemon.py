"""Tests for the per-node Docker daemon."""

import pytest

from repro.dockersim.daemon import DockerDaemon
from repro.errors import CapacityError, ContainerNotFound, ContainerStateError
from repro.workloads.requests import Request


@pytest.fixture
def daemon(node):
    return DockerDaemon(node)


def run_default(daemon, service="svc", cpu=0.5, mem=512.0, net=50.0, boot=0.0):
    return daemon.run(
        service, 0, cpu_request=cpu, mem_limit=mem, net_rate=net, now=0.0, boot_delay=boot
    )


class TestRun:
    def test_run_hosts_container(self, daemon):
        container = run_default(daemon)
        assert container.container_id in daemon.node.containers
        assert container in daemon.ps()

    def test_boot_delay_respected(self, daemon):
        container = run_default(daemon, boot=3.0)
        assert not container.is_serving

    def test_capacity_enforced(self, daemon):
        run_default(daemon, cpu=3.0)
        with pytest.raises(CapacityError):
            run_default(daemon, service="other", cpu=2.0)

    def test_max_concurrency_passed(self, daemon):
        container = daemon.run(
            "svc", 0, cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0, max_concurrency=4
        )
        assert container.max_concurrency == 4


class TestUpdate:
    def test_vertical_cpu(self, daemon):
        container = run_default(daemon)
        daemon.update(container.container_id, cpu_request=2.0)
        assert container.cpu_request == 2.0
        assert container.cpu_shares == 2048

    def test_vertical_memory(self, daemon):
        container = run_default(daemon)
        daemon.update(container.container_id, mem_limit=1024.0)
        assert container.mem_limit == 1024.0

    def test_vertical_network_reshapes_nic(self, daemon):
        container = run_default(daemon, net=50.0)
        daemon.update(container.container_id, net_rate=200.0)
        class_id = daemon.node.nic.iptables.class_of(container.container_id)
        assert daemon.node.nic.qdisc.get_class(class_id).rate == 200.0

    def test_update_cannot_oversubscribe(self, daemon):
        a = run_default(daemon, cpu=2.0)
        run_default(daemon, service="b", cpu=1.5)
        with pytest.raises(CapacityError):
            daemon.update(a.container_id, cpu_request=3.0)

    def test_update_down_always_allowed(self, daemon):
        container = run_default(daemon, cpu=2.0)
        daemon.update(container.container_id, cpu_request=0.1)
        assert container.cpu_request == 0.1

    def test_update_unknown_rejected(self, daemon):
        with pytest.raises(ContainerNotFound):
            daemon.update("ghost", cpu_request=1.0)

    def test_update_stopped_rejected(self, daemon):
        container = run_default(daemon)
        container.terminate(1.0)
        with pytest.raises(ContainerStateError):
            daemon.update(container.container_id, cpu_request=1.0)

    def test_invalid_values_rejected(self, daemon):
        container = run_default(daemon)
        with pytest.raises(ContainerStateError):
            daemon.update(container.container_id, mem_limit=0.0)


class TestRemoveAndStats:
    def test_remove_unhosts(self, daemon):
        container = run_default(daemon)
        daemon.remove(container.container_id, 1.0)
        assert container.container_id not in daemon.node.containers

    def test_remove_unknown_rejected(self, daemon):
        with pytest.raises(ContainerNotFound):
            daemon.remove("ghost", 0.0)

    def test_stats_reflect_allocations(self, daemon):
        container = run_default(daemon, cpu=1.5, mem=256.0, net=25.0)
        stats = daemon.stats(container.container_id, 3.0)
        assert stats.timestamp == 3.0
        assert stats.cpu_request == 1.5
        assert stats.mem_limit == 256.0
        assert stats.net_rate == 25.0

    def test_stats_track_usage(self, daemon):
        container = run_default(daemon)
        container.accept(Request(service="svc", arrival_time=0.0, cpu_work=100.0), 0.0)
        daemon.node.step(1.0, 1.0)
        assert daemon.stats(container.container_id, 1.0).cpu_usage > 0.0


class TestReaping:
    def test_reap_oom_kills(self, daemon, overheads):
        victim = run_default(daemon, mem=110.0)
        for _ in range(6):
            victim.accept(
                Request(service="svc", arrival_time=0.0, cpu_work=1000.0, mem_footprint=200.0), 0.0
            )
        daemon.node.step(1.0, 1.0)
        corpses = daemon.reap_oom_kills(1.0)
        assert corpses == [victim]
        assert victim.container_id not in daemon.node.containers

    def test_reap_ignores_healthy(self, daemon):
        run_default(daemon)
        assert daemon.reap_oom_kills(1.0) == []
