"""Tests for the streaming telemetry subsystem (``repro.telemetry``).

Covers the instrument primitives, the registry (recording and null), both
exporters with their strict parsers, SLO burn-rate tracking, and the live
``top`` renderer.  End-to-end byte-determinism of instrumented runs lives
in ``tests/test_determinism_end_to_end.py``.
"""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.metrics.sla import Sla
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    BurnWindow,
    MetricRegistry,
    NullRegistry,
    SloTracker,
    parse_openmetrics,
    render_openmetrics,
    render_top,
)
from repro.telemetry.instruments import Histogram, validate_metric_name
from repro.telemetry.snapshot import (
    TELEMETRY_SCHEMA,
    parse_snapshot_line,
    read_snapshot_jsonl,
    snapshot_to_jsonl,
    write_snapshot_jsonl,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricRegistry()
        family = registry.counter("requests", "Requests seen.")
        family.inc()
        family.inc(2.5)
        assert family.labels().value == 3.5

    def test_counter_rejects_negative_increment(self):
        registry = MetricRegistry()
        family = registry.counter("requests", "Requests seen.")
        with pytest.raises(TelemetryError):
            family.inc(-1.0)

    def test_gauge_set_and_add(self):
        registry = MetricRegistry()
        family = registry.gauge("backlog", "Queued requests.")
        child = family.labels()
        child.set(4.0)
        child.add(-1.5)
        assert child.value == 2.5

    def test_histogram_bucket_assignment(self):
        h = Histogram((1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            h.observe(value)
        # (<=1.0, <=2.0, +Inf) non-cumulative: 0.5 and 1.0 land in the
        # first bucket, 1.5 in the second, 5.0 overflows.
        assert h.counts == [2, 1, 1]
        assert h.cumulative() == (2, 3, 4)
        assert h.count == 4
        assert h.sum == pytest.approx(8.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram(())
        with pytest.raises(TelemetryError):
            Histogram((1.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram((2.0, 1.0))

    def test_histogram_quantiles_interpolate(self):
        h = Histogram((1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(1.5)  # all mass in (1, 2]
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_histogram_quantile_clamps_at_last_finite_bound(self):
        h = Histogram((1.0, 2.0))
        h.observe(100.0)  # +Inf bucket
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_histogram_quantile_edge_cases(self):
        h = Histogram((1.0,))
        assert h.quantile(0.5) == 0.0  # empty
        with pytest.raises(TelemetryError):
            h.quantile(1.5)

    def test_labels_positional_and_named_agree(self):
        registry = MetricRegistry()
        family = registry.counter("routed", "Routed.", labels=("node",))
        family.labels("n1").inc()
        family.labels(node="n1").inc()
        assert family.labels("n1").value == 2.0
        assert len(family) == 1

    def test_labels_validation(self):
        registry = MetricRegistry()
        family = registry.counter("routed", "Routed.", labels=("node",))
        with pytest.raises(TelemetryError):
            family.labels("n1", node="n1")  # both styles at once
        with pytest.raises(TelemetryError):
            family.labels("a", "b")  # arity mismatch
        with pytest.raises(TelemetryError):
            family.labels(ghost="x")  # unknown label name

    def test_peek_never_creates_children(self):
        registry = MetricRegistry()
        family = registry.counter("routed", "Routed.", labels=("node",))
        assert family.peek("n1") is None
        assert len(family) == 0
        family.labels("n1").inc()
        assert family.peek("n1") is family.labels("n1")

    def test_name_validation(self):
        assert validate_metric_name("node_cpu_ratio") == "node_cpu_ratio"
        for bad in ("", "Upper", "9leading", "has-dash", "requests_total"):
            with pytest.raises(TelemetryError):
                validate_metric_name(bad)

    def test_default_latency_buckets_increase(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricRegistry()
        first = registry.counter("hits", "Hits.")
        again = registry.counter("hits", "Hits.")
        assert first is again

    def test_conflicting_redeclaration_raises(self):
        registry = MetricRegistry()
        registry.counter("hits", "Hits.")
        with pytest.raises(TelemetryError):
            registry.gauge("hits", "Hits.")  # different kind
        with pytest.raises(TelemetryError):
            registry.counter("hits", "Hits.", labels=("node",))  # different labels

    def test_families_sorted_and_volatile_filtered(self):
        registry = MetricRegistry()
        registry.gauge("zeta", "Z.")
        registry.gauge("alpha", "A.")
        registry.gauge("wall", "W.", volatile=True)
        names = [f.name for f in registry.families()]
        assert names == ["alpha", "wall", "zeta"]
        persisted = [f.name for f in registry.families(include_volatile=False)]
        assert persisted == ["alpha", "zeta"]

    def test_capture_appends_and_trims_history(self):
        registry = MetricRegistry(retention=3)
        child = registry.counter("hits", "Hits.").labels()
        for t in range(5):
            child.inc()
            registry.capture(float(t))
        assert list(child.history) == [(2.0, 3.0), (3.0, 4.0), (4.0, 5.0)]

    def test_capture_rejects_time_going_backwards(self):
        registry = MetricRegistry()
        registry.capture(10.0)
        with pytest.raises(TelemetryError):
            registry.capture(9.0)

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        assert null.enabled is False
        counter = null.counter("hits", "Hits.")
        counter.inc()
        counter.labels("anything", "goes").inc(5.0)
        gauge = null.gauge("g", "G.")
        gauge.set(3.0, node="n1")
        null.histogram("h", "H.").observe(1.0)
        null.capture(0.0)
        null.capture(-1.0)  # even backwards time is a no-op
        assert len(null) == 0
        assert counter.labels().value == 0.0

    def test_shared_null_registry_instance(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)
        # Shared no-op children: no state accumulates across uses.
        a = NULL_REGISTRY.counter("a", "A.").labels()
        b = NULL_REGISTRY.counter("b", "B.").labels()
        assert a is b


def _populated_registry() -> MetricRegistry:
    registry = MetricRegistry()
    routed = registry.counter("routed", "Requests routed.", labels=("node",))
    routed.labels("n1").inc(3)
    routed.labels("n0").inc(1)
    registry.gauge("backlog", "Backlog depth.").labels().set(2.0)
    hist = registry.histogram(
        "latency_seconds", "Latency.", buckets=(0.5, 1.0), unit="seconds"
    )
    hist.observe(0.2)
    hist.observe(0.7)
    hist.observe(9.0)
    registry.gauge("wall_seconds", "Wall.", volatile=True).labels().set(1.23)
    registry.capture(60.0)
    return registry


class TestOpenMetrics:
    def test_render_parse_round_trip(self):
        text = render_openmetrics(_populated_registry())
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert set(families) == {"routed", "backlog", "latency_seconds"}
        routed = families["routed"]
        assert routed.kind == "counter"
        # Counters export under the _total sample name, children label-sorted.
        assert [
            (name, labels.get("node"), value) for name, labels, value in routed.samples
        ] == [
            ("routed_total", "n0", 1.0),
            ("routed_total", "n1", 3.0),
        ]

    def test_histogram_exposition_is_cumulative(self):
        text = render_openmetrics(_populated_registry())
        families = parse_openmetrics(text)
        hist = families["latency_seconds"]
        assert hist.unit == "seconds"
        by_name: dict[str, list[float]] = {}
        for name, _labels, value in hist.samples:
            by_name.setdefault(name, []).append(value)
        # Buckets are cumulative, ending at +Inf == count.
        assert by_name["latency_seconds_bucket"] == [1.0, 2.0, 3.0]
        assert by_name["latency_seconds_count"] == [3.0]
        assert by_name["latency_seconds_sum"] == [pytest.approx(9.9)]

    def test_volatile_families_excluded_by_default(self):
        registry = _populated_registry()
        assert "wall_seconds" not in parse_openmetrics(render_openmetrics(registry))
        with_volatile = render_openmetrics(registry, include_volatile=True)
        assert "wall_seconds" in parse_openmetrics(with_volatile)

    def test_parser_rejects_missing_eof(self):
        text = render_openmetrics(_populated_registry()).replace("# EOF\n", "")
        with pytest.raises(TelemetryError):
            parse_openmetrics(text)

    def test_parser_rejects_non_monotone_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            '# HELP h H.\n'
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
            "h_sum 1.0\n"
            "# EOF\n"
        )
        with pytest.raises(TelemetryError):
            parse_openmetrics(bad)


class TestSnapshot:
    def test_lines_are_canonical_json_with_schema(self):
        text = snapshot_to_jsonl(_populated_registry(), now=60.0)
        for line in text.splitlines():
            payload = json.loads(line)
            assert payload["schema"] == TELEMETRY_SCHEMA
            # Canonical encoding: sorted keys, compact separators.
            assert line == json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )

    def test_histogram_line_shape(self):
        text = snapshot_to_jsonl(_populated_registry(), now=60.0)
        hist_lines = [
            json.loads(line)
            for line in text.splitlines()
            if json.loads(line).get("name") == "latency_seconds"
        ]
        assert len(hist_lines) == 1
        (line,) = hist_lines
        assert line["count"] == 3
        assert line["sum"] == pytest.approx(9.9)
        # [bound, cumulative] pairs; +Inf encodes as null.
        assert line["buckets"] == [[0.5, 1], [1.0, 2], [None, 3]]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        written = write_snapshot_jsonl(_populated_registry(), path, now=60.0)
        lines = read_snapshot_jsonl(path)
        assert written == len(lines) > 0

    def test_parse_rejects_wrong_schema(self):
        with pytest.raises(TelemetryError):
            parse_snapshot_line('{"schema": "repro.obs/1", "kind": "counter"}')
        with pytest.raises(TelemetryError):
            parse_snapshot_line("not json at all")


class TestBurnWindow:
    def test_validation(self):
        with pytest.raises(TelemetryError):
            BurnWindow(name="", horizon=60.0, threshold=1.0)
        with pytest.raises(TelemetryError):
            BurnWindow(name="w", horizon=0.0, threshold=1.0)
        with pytest.raises(TelemetryError):
            BurnWindow(name="w", horizon=60.0, threshold=0.0)
        with pytest.raises(TelemetryError):
            BurnWindow(name="w", horizon=60.0, threshold=1.0, confirm_fraction=0.0)

    def test_confirm_horizon(self):
        window = BurnWindow(name="w", horizon=100.0, threshold=2.0)
        assert window.confirm_horizon == pytest.approx(25.0)


class TestSloTracker:
    def _tracker(self, *, availability=0.9, threshold=2.0):
        return SloTracker(
            Sla(response_time_target=1.0, availability_target=availability),
            windows=(BurnWindow(name="w", horizon=100.0, threshold=threshold),),
        )

    def test_is_good_classification(self):
        tracker = self._tracker()
        assert tracker.is_good(succeeded=True, response_time=0.5)
        assert not tracker.is_good(succeeded=True, response_time=2.0)  # too slow
        assert not tracker.is_good(succeeded=False, response_time=0.1)

    def test_burn_rate_normalises_by_budget(self):
        tracker = self._tracker(availability=0.9)  # budget = 0.1
        tracker.record("svc", good=8, bad=2)  # 20 % bad
        tracker.capture(0.0)
        assert tracker.burn_rate("svc", 100.0, 0.0) == pytest.approx(2.0)

    def test_burn_rate_uses_trailing_window(self):
        tracker = self._tracker()
        tracker.record("svc", bad=10)  # old badness
        tracker.capture(0.0)
        tracker.record("svc", good=100)  # then a clean stretch
        tracker.capture(200.0)
        tracker.capture(400.0)
        # The 100 s window at t=400 contains only good traffic.
        assert tracker.burn_rate("svc", 100.0, 400.0) == pytest.approx(0.0)

    def test_alert_fires_and_resolves(self):
        tracker = self._tracker(availability=0.9, threshold=2.0)
        tracker.record("svc", good=5, bad=5)  # burn 5.0
        transitions = tracker.capture(10.0)
        assert [(a.state, a.window) for a in transitions] == [("firing", "w")]
        assert tracker.firing() == [("svc", "w")]
        # Re-capture while still burning: no duplicate transition.
        assert tracker.capture(20.0) == []
        # A long clean stretch drains the window and resolves the alert.
        tracker.record("svc", good=500)
        transitions = tracker.capture(150.0)
        assert [a.state for a in transitions] == ["resolved"]
        assert tracker.firing() == []
        assert [a.state for a in tracker.alerts()] == ["firing", "resolved"]

    def test_budget_remaining(self):
        tracker = self._tracker(availability=0.9)
        assert tracker.budget_remaining("ghost") == 1.0  # untouched budget
        tracker.record("svc", good=90, bad=10)  # exactly at budget
        assert tracker.budget_remaining("svc") == pytest.approx(0.0)

    def test_perfect_availability_gets_epsilon_budget(self):
        tracker = SloTracker(Sla(availability_target=1.0))
        assert tracker.budget > 0

    def test_constructor_validation(self):
        with pytest.raises(TelemetryError):
            SloTracker(windows=())
        window = BurnWindow(name="w", horizon=60.0, threshold=1.0)
        with pytest.raises(TelemetryError):
            SloTracker(windows=(window, window))
        with pytest.raises(TelemetryError):
            self._tracker().record("svc", good=-1)

    def test_alert_to_dict_round_trips_json(self):
        tracker = self._tracker()
        tracker.record("svc", bad=10)
        (alert,) = tracker.capture(5.0)
        payload = json.loads(json.dumps(alert.to_dict()))
        assert payload["state"] == "firing"
        assert payload["service"] == "svc"


class TestTopRenderer:
    def test_render_top_shows_series(self):
        registry = MetricRegistry()
        registry.counter("sim_steps", "Steps.").inc(42)
        registry.gauge(
            "node_cpu_utilization_ratio", "CPU.", labels=("node",)
        ).set(0.5, node="worker-00")
        registry.capture(30.0)
        frame = render_top(registry, now=30.0, title="probe")
        assert "probe" in frame
        assert "worker-00" in frame
        assert "t=    30.0s" in frame or "30.0" in frame

    def test_render_top_does_not_mint_children(self):
        registry = MetricRegistry()
        family = registry.gauge("service_replicas", "R.", labels=("service",))
        registry.capture(0.0)
        render_top(registry, now=0.0)
        assert len(family) == 0

    def test_render_top_max_nodes_ranks_by_binding_resource(self):
        registry = MetricRegistry()
        cpu = registry.gauge("node_cpu_utilization_ratio", "CPU.", labels=("node",))
        mem = registry.gauge("node_memory_utilization_ratio", "MEM.", labels=("node",))
        for node, cpu_v, mem_v in (
            ("worker-00", 0.1, 0.9),  # binding: mem 0.9 — busiest
            ("worker-01", 0.5, 0.2),  # binding: cpu 0.5
            ("worker-02", 0.3, 0.1),  # binding: cpu 0.3 — hidden at K=2
        ):
            cpu.set(cpu_v, node=node)
            mem.set(mem_v, node=node)
        registry.capture(30.0)
        frame = render_top(registry, now=30.0, max_nodes=2)
        assert "worker-00" in frame and "worker-01" in frame
        assert "worker-02" not in frame
        assert "(+1 more node)" in frame

    def test_render_top_without_max_nodes_shows_everyone(self):
        registry = MetricRegistry()
        cpu = registry.gauge("node_cpu_utilization_ratio", "CPU.", labels=("node",))
        for i in range(3):
            cpu.set(0.1 * i, node=f"worker-{i:02d}")
        registry.capture(30.0)
        frame = render_top(registry, now=30.0)
        assert "more node" not in frame
        assert frame.count("worker-") == 3

    def test_render_top_rejects_non_positive_max_nodes(self):
        registry = MetricRegistry()
        registry.capture(0.0)
        with pytest.raises(ValueError):
            render_top(registry, now=0.0, max_nodes=0)

    def test_run_top_requires_recording_registry(self):
        from repro.telemetry import run_top

        class _Stub:
            engine = None
            telemetry = None

        with pytest.raises(ValueError):
            run_top(_Stub(), duration=1.0, interval=1.0, stream=io.StringIO())
