"""Trace persistence tests: span round-trips, JSONL encoding invariants,
schema validation, and the operator-facing explain rendering."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    TRACE_SCHEMA,
    ActionRecord,
    DecisionSpan,
    LedgerStep,
    MetricSample,
    parse_trace_line,
    read_trace_jsonl,
    render_explain,
    render_span,
    span_from_dict,
    span_to_dict,
    span_to_json_line,
    spans_to_jsonl,
    write_trace_jsonl,
)


def _span(now: float = 15.0, *, actions: bool = True) -> DecisionSpan:
    return DecisionSpan(
        now=now,
        policy="hybrid",
        digest="00aa11bb22cc33dd",
        services=2,
        nodes=3,
        replicas=5,
        metrics=(
            MetricSample(service="api", metric="cpu", value=0.83, threshold=0.5, verdict="acquire"),
        ),
        ledger=(LedgerStep(op="take", node="node-01", cpu=0.25),),
        actions=(
            ActionRecord(
                kind="vertical-scale",
                service="api",
                target="api.r0.c1",
                reason="acquire",
                metric="cpu",
                value=0.83,
                threshold=0.5,
                detail="cpu 0.500->0.750 on node-01",
            ),
        )
        if actions
        else (),
        emitted=1 if actions else 0,
        applied=1 if actions else 0,
        failed=0,
    )


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        span = _span()
        assert span_from_dict(span_to_dict(span)) == span

    def test_jsonl_round_trip_is_lossless(self):
        span = _span()
        assert parse_trace_line(span_to_json_line(span)) == span

    def test_file_round_trip(self, tmp_path):
        spans = (_span(5.0), _span(10.0, actions=False))
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(spans, path) == 2
        assert read_trace_jsonl(path) == spans

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_trace_jsonl((), path) == 0
        assert path.read_text() == ""
        assert read_trace_jsonl(path) == ()


class TestEncoding:
    def test_lines_are_canonical_json(self):
        line = span_to_json_line(_span())
        payload = json.loads(line)
        assert payload["schema"] == TRACE_SCHEMA
        # Canonical: sorted keys, compact separators — byte-stable encoding.
        assert line == json.dumps(payload, sort_keys=True, separators=(",", ":"))
        assert "\n" not in line

    def test_jsonl_has_one_line_per_span(self):
        text = spans_to_jsonl([_span(5.0), _span(10.0)])
        assert text.endswith("\n")
        assert len(text.strip().splitlines()) == 2

    def test_blank_lines_are_skipped_on_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(span_to_json_line(_span()) + "\n\n\n")
        assert len(read_trace_jsonl(path)) == 1


class TestValidation:
    def test_rejects_invalid_json(self):
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            parse_trace_line("{nope")

    def test_rejects_non_object_lines(self):
        with pytest.raises(ObservabilityError, match="JSON object"):
            parse_trace_line("[1,2,3]")

    def test_rejects_wrong_schema(self):
        payload = span_to_dict(_span())
        payload["schema"] = "repro.obs/999"
        with pytest.raises(ObservabilityError, match="unsupported trace schema"):
            parse_trace_line(json.dumps(payload))

    def test_rejects_unknown_fields(self):
        payload = span_to_dict(_span())
        payload["surprise"] = True
        with pytest.raises(ObservabilityError, match="unknown fields"):
            span_from_dict(payload)

    def test_read_errors_carry_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(span_to_json_line(_span()) + "\n{broken\n")
        with pytest.raises(ObservabilityError, match=r"bad\.jsonl:2"):
            read_trace_jsonl(path)


class TestExplainRendering:
    def test_span_render_names_value_and_threshold(self):
        text = render_span(_span())
        assert "policy=hybrid" in text
        assert "digest=00aa11bb22cc33dd" in text
        assert "value=0.830 threshold=0.500" in text
        assert "(cpu 0.830 vs threshold 0.500)" in text
        assert "applied 1/1 (failed 0)" in text

    def test_actions_only_hides_evidence(self):
        text = render_span(_span(), verbose=False)
        assert "action" in text
        assert "metric  cpu" not in text
        assert "ledger" not in text

    def test_explain_filters_by_service(self):
        spans = [_span(5.0), _span(10.0)]
        assert render_explain(spans, service="nope") == "(no decision spans)"
        text = render_explain(spans, service="api")
        assert text.endswith("2 ticks, 2 actions")

    def test_explain_limit_keeps_the_tail(self):
        spans = [_span(5.0), _span(10.0), _span(15.0)]
        text = render_explain(spans, limit=1)
        assert "t=    15.0s" in text
        assert "t=     5.0s" not in text

    def test_explain_empty(self):
        assert render_explain([]) == "(no decision spans)"
