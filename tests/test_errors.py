"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), f"{name} escapes ReproError"

    def test_subsystem_relationships(self):
        assert issubclass(errors.ClockError, errors.SimulationError)
        assert issubclass(errors.PlacementError, errors.ClusterError)
        assert issubclass(errors.CapacityError, errors.ClusterError)
        assert issubclass(errors.ContainerNotFound, errors.DockerSimError)
        assert issubclass(errors.ContainerStateError, errors.DockerSimError)

    def test_single_except_catches_library_failures(self):
        """The advertised usage: one except clause for any library error."""
        from repro.cluster.resources import ResourceVector
        from repro.cluster.node import Node

        with pytest.raises(errors.ReproError):
            Node("bad", ResourceVector(0.0, 0.0, 0.0))

    def test_errors_carry_messages(self):
        try:
            raise errors.CapacityError("node full")
        except errors.ReproError as exc:
            assert "node full" in str(exc)
