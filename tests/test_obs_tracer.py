"""Tracer contract tests: the NullTracer no-op, the DecisionTracer's
strict span lifecycle, and the wiring that points policies at the run's
tracer."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.core.policy import NodeLedger
from repro.core.view import ClusterView, NodeView, ReplicaView, ServiceView
from repro.errors import ObservabilityError
from repro.obs import NULL_TRACER, DecisionTracer, NullTracer, Tracer


def _view(now: float = 10.0) -> ClusterView:
    replica = ReplicaView(
        container_id="api.r0.c1",
        service="api",
        node="node-00",
        booting=False,
        cpu_request=0.5,
        cpu_usage=0.4,
        mem_limit=512.0,
        mem_usage=200.0,
        net_rate=50.0,
        net_usage=10.0,
    )
    service = ServiceView(
        name="api",
        min_replicas=1,
        max_replicas=4,
        target_utilization=0.5,
        base_cpu_request=0.5,
        base_mem_limit=512.0,
        base_net_rate=50.0,
        replicas=(replica,),
    )
    node = NodeView(
        name="node-00",
        capacity=ResourceVector(8.0, 16384.0, 1000.0),
        allocated=ResourceVector(0.5, 512.0, 50.0),
        services=("api",),
    )
    return ClusterView(now=now, services=(service,), nodes=(node,))


class TestNullTracer:
    def test_is_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        # Every hook is callable in any order and returns None.
        assert tracer.record_metric(service="a", metric="cpu", value=1.0, threshold=0.5, verdict="x") is None
        assert tracer.end_tick(emitted=0, applied=0, failed=0) is None
        assert tracer.begin_tick(now=0.0, policy="p", digest="d", services=1, nodes=1, replicas=1) is None

    def test_shared_instance_satisfies_the_protocol(self):
        assert isinstance(NULL_TRACER, Tracer)
        assert isinstance(DecisionTracer(), Tracer)


class TestDecisionTracerLifecycle:
    def test_records_one_span_per_bracket(self):
        tracer = DecisionTracer()
        tracer.begin_tick(now=5.0, policy="hybrid", digest="abc", services=2, nodes=3, replicas=4)
        tracer.record_metric(service="api", metric="cpu", value=0.8, threshold=0.5, verdict="acquire")
        tracer.record_ledger(op="take", node="node-00", cpu=0.25)
        tracer.record_action(
            kind="vertical-scale", service="api", target="api.r0.c1",
            reason="acquire", metric="cpu", value=0.8, threshold=0.5,
        )
        tracer.end_tick(emitted=1, applied=1, failed=0)

        assert len(tracer) == 1
        (span,) = tracer.spans()
        assert span.now == 5.0 and span.policy == "hybrid" and span.digest == "abc"
        assert span.services == 2 and span.nodes == 3 and span.replicas == 4
        assert [m.verdict for m in span.metrics] == ["acquire"]
        assert [step.op for step in span.ledger] == ["take"]
        assert span.actions[0].value == 0.8 and span.actions[0].threshold == 0.5
        assert (span.emitted, span.applied, span.failed) == (1, 1, 0)

    def test_evidence_does_not_bleed_between_spans(self):
        tracer = DecisionTracer()
        tracer.begin_tick(now=5.0, policy="p", digest="a", services=1, nodes=1, replicas=1)
        tracer.record_metric(service="api", metric="cpu", value=1.0, threshold=0.5, verdict="up")
        tracer.end_tick(emitted=0, applied=0, failed=0)
        tracer.begin_tick(now=10.0, policy="p", digest="b", services=1, nodes=1, replicas=1)
        tracer.end_tick(emitted=0, applied=0, failed=0)
        first, second = tracer.spans()
        assert len(first.metrics) == 1
        assert second.metrics == ()

    def test_double_begin_raises(self):
        tracer = DecisionTracer()
        tracer.begin_tick(now=0.0, policy="p", digest="d", services=1, nodes=1, replicas=1)
        with pytest.raises(ObservabilityError):
            tracer.begin_tick(now=1.0, policy="p", digest="d", services=1, nodes=1, replicas=1)

    def test_record_outside_bracket_raises(self):
        tracer = DecisionTracer()
        with pytest.raises(ObservabilityError):
            tracer.record_metric(service="a", metric="cpu", value=1.0, threshold=0.5, verdict="x")
        with pytest.raises(ObservabilityError):
            tracer.end_tick(emitted=0, applied=0, failed=0)

    def test_clear_drops_completed_spans(self):
        tracer = DecisionTracer()
        tracer.begin_tick(now=0.0, policy="p", digest="d", services=1, nodes=1, replicas=1)
        tracer.end_tick(emitted=0, applied=0, failed=0)
        tracer.clear()
        assert len(tracer) == 0


class TestLedgerTracing:
    def test_ledger_ops_emit_steps(self):
        tracer = DecisionTracer()
        tracer.begin_tick(now=0.0, policy="p", digest="d", services=1, nodes=1, replicas=1)
        ledger = NodeLedger(_view(), tracer=tracer)
        ledger.take("node-00", ResourceVector(cpu=1.0))
        ledger.release("node-00", ResourceVector(cpu=0.5))
        ledger.plan_placement("node-00", "other", ResourceVector(cpu=0.25, memory=128.0))
        tracer.end_tick(emitted=0, applied=0, failed=0)
        (span,) = tracer.spans()
        ops = [step.op for step in span.ledger]
        # plan_placement takes first, then records the placement itself.
        assert ops == ["take", "release", "take", "plan-placement"]
        assert span.ledger[-1].service == "other"

    def test_default_ledger_is_untraced(self):
        ledger = NodeLedger(_view())
        ledger.take("node-00", ResourceVector(cpu=1.0))  # must not raise


class TestPolicyWiring:
    def test_policies_default_to_the_shared_null_tracer(self):
        from repro.core import HyScaleCpu, KubernetesHpa

        assert KubernetesHpa().tracer is NULL_TRACER
        assert HyScaleCpu().tracer is NULL_TRACER

    def test_monitor_points_policy_at_the_run_tracer(self):
        from repro.core import KubernetesHpa
        from tests.test_determinism_end_to_end import _fresh_simulation  # reuse wiring

        tracer = DecisionTracer()
        simulation = _fresh_simulation(seed=3, tracer=tracer)
        assert simulation.monitor.tracer is tracer
        assert simulation.policy.tracer is tracer
        # Swapping the policy re-points the new one too.
        simulation.monitor.set_policy(KubernetesHpa())
        assert simulation.monitor.policy.tracer is tracer

    def test_traced_run_produces_spans_naming_value_and_threshold(self):
        from tests.test_determinism_end_to_end import _fresh_simulation

        tracer = DecisionTracer()
        simulation = _fresh_simulation(seed=3, tracer=tracer)
        simulation.run(60.0)
        spans = tracer.spans()
        assert spans, "expected at least one monitor tick"
        actions = [a for span in spans for a in span.actions]
        assert actions, "expected scaling activity in the probe run"
        for action in actions:
            assert action.metric, "every action names its triggering metric"
        # Span action counts match what the policy emitted each tick.
        assert all(span.emitted == len(span.actions) for span in spans)
