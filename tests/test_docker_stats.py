"""Tests for docker-stats samples and windows."""

import pytest

from repro.dockersim.stats import StatsSample, StatsWindow
from repro.errors import DockerSimError


def sample(t: float, cpu: float = 0.5, req: float = 1.0, mem: float = 256.0, limit: float = 512.0) -> StatsSample:
    return StatsSample(
        timestamp=t,
        cpu_usage=cpu,
        cpu_request=req,
        mem_usage=mem,
        mem_limit=limit,
        net_usage=10.0,
        net_rate=50.0,
    )


class TestSample:
    def test_utilizations(self):
        s = sample(0.0, cpu=0.5, req=1.0)
        assert s.cpu_utilization == 0.5
        assert s.mem_utilization == 0.5
        assert s.net_utilization == pytest.approx(0.2)

    def test_utilization_can_exceed_one(self):
        # Work-conserving shares: usage above request is normal.
        assert sample(0.0, cpu=3.0, req=1.0).cpu_utilization == 3.0

    def test_zero_request_gives_zero_utilization(self):
        assert sample(0.0, req=0.0).cpu_utilization == 0.0


class TestWindow:
    def test_mean_over(self):
        window = StatsWindow(horizon=30.0)
        for t in range(5):
            window.record(sample(float(t), cpu=float(t)))
        mean = window.mean_over(10.0)
        assert mean.cpu_usage == pytest.approx(2.0)  # mean of 0..4

    def test_mean_uses_latest_allocations(self):
        window = StatsWindow(horizon=30.0)
        window.record(sample(0.0, req=1.0))
        window.record(sample(1.0, req=2.0))
        assert window.mean_over(10.0).cpu_request == 2.0

    def test_mean_respects_window(self):
        window = StatsWindow(horizon=100.0)
        window.record(sample(0.0, cpu=100.0))
        window.record(sample(50.0, cpu=1.0))
        window.record(sample(51.0, cpu=1.0))
        assert window.mean_over(5.0).cpu_usage == pytest.approx(1.0)

    def test_eviction_beyond_horizon(self):
        window = StatsWindow(horizon=10.0)
        window.record(sample(0.0))
        window.record(sample(20.0))
        assert len(window) == 1

    def test_empty_window(self):
        window = StatsWindow()
        assert window.latest() is None
        assert window.mean_over(5.0) is None

    def test_out_of_order_rejected(self):
        window = StatsWindow()
        window.record(sample(5.0))
        with pytest.raises(DockerSimError):
            window.record(sample(1.0))

    def test_bad_horizon_rejected(self):
        with pytest.raises(DockerSimError):
            StatsWindow(horizon=0.0)
