"""Tests for the scalable-monitoring layer (``repro.telemetry.sampling``).

Covers the observation-cost model and its budget ledger, the sampling
policy registry, the decay/hotness/staleness semantics of the adaptive
controllers, and the contract the defaults must keep: ``full`` sampling
is byte-identical to a build that never heard of sampling, and sampling
never perturbs the simulated run.  The nine-policy pin at 24 nodes lives
in ``tests/test_determinism_end_to_end.py``.
"""

from types import SimpleNamespace

import pytest

from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig, SimulationConfig
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.errors import ExperimentError, TelemetryError
from repro.experiments.runner import Simulation
from repro.instrument import NullInstrument
from repro.telemetry import (
    DEFAULT_COST_MODEL,
    NULL_REGISTRY,
    AdaptiveSamplingController,
    MetricRegistry,
    MonitorBudget,
    NullRegistry,
    ObservationCostModel,
    SamplingController,
    SamplingSpec,
    ThresholdAwareSamplingController,
    make_sampling,
    register_sampling_policy,
    registered_sampling_policies,
    render_openmetrics,
    resolve_sampling,
    snapshot_to_jsonl,
)
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad


class TestSamplingSpec:
    def test_defaults_are_full_cadence(self):
        spec = SamplingSpec()
        assert spec.policy == "full"
        assert spec.cost is DEFAULT_COST_MODEL

    def test_guard_band_bounds(self):
        with pytest.raises(TelemetryError):
            SamplingSpec(guard_band=-0.1)
        with pytest.raises(TelemetryError):
            SamplingSpec(guard_band=1.5)

    def test_edge_ordering(self):
        with pytest.raises(TelemetryError):
            SamplingSpec(hot_low=0.8, hot_high=0.2)
        with pytest.raises(TelemetryError):
            SamplingSpec(hot_high=1.5)

    def test_max_backoff_floor(self):
        with pytest.raises(TelemetryError):
            SamplingSpec(max_backoff=0)

    def test_hot_seconds_must_be_non_negative(self):
        with pytest.raises(TelemetryError):
            SamplingSpec(hot_seconds=-1.0)


class TestObservationCostModel:
    def test_rejects_negative_prices(self):
        with pytest.raises(TelemetryError):
            ObservationCostModel(per_node_seconds=-1e-6)
        with pytest.raises(TelemetryError):
            ObservationCostModel(per_skip_seconds=-1.0)

    def test_node_cost_is_linear_in_containers(self):
        model = ObservationCostModel(per_node_seconds=1.0, per_container_seconds=0.5)
        assert model.node_cost(0) == pytest.approx(1.0)
        assert model.node_cost(4) == pytest.approx(3.0)

    def test_capture_cost_is_linear_in_series(self):
        model = ObservationCostModel(per_capture_seconds=2.0, per_series_seconds=0.25)
        assert model.capture_cost(0) == pytest.approx(2.0)
        assert model.capture_cost(8) == pytest.approx(4.0)


class TestMonitorBudget:
    def test_ledger_accumulates(self):
        model = ObservationCostModel(
            per_capture_seconds=1.0,
            per_node_seconds=0.1,
            per_container_seconds=0.01,
            per_series_seconds=0.001,
            per_skip_seconds=0.0001,
        )
        budget = MonitorBudget()
        budget.charge_node(model, containers=3)
        budget.charge_node(model, containers=5)
        budget.charge_skip(model)
        budget.charge_capture(model, series=10)
        assert budget.nodes_observed == 2
        assert budget.containers_observed == 8
        assert budget.nodes_skipped == 1
        assert budget.captures == 1
        assert budget.series_captured == 10
        expected = 0.1 + 0.03 + 0.1 + 0.05 + 0.0001 + 1.0 + 0.01
        assert budget.collection_cost_seconds == pytest.approx(expected)

    def test_to_dict_is_plain_json(self):
        budget = MonitorBudget()
        budget.charge_capture(DEFAULT_COST_MODEL, series=2)
        payload = budget.to_dict()
        assert set(payload) == {
            "collection_cost_seconds",
            "captures",
            "nodes_observed",
            "nodes_skipped",
            "containers_observed",
            "series_captured",
        }
        assert payload["captures"] == 1


class TestPolicyRegistry:
    def test_builtin_policies_registered_sorted(self):
        names = registered_sampling_policies()
        assert names == tuple(sorted(names))
        assert {"full", "adaptive", "threshold-aware"} <= set(names)

    def test_make_sampling_unknown_name_raises(self):
        with pytest.raises(TelemetryError, match="unknown sampling policy"):
            make_sampling("psychic")

    def test_make_sampling_realigns_spec_policy(self):
        controller = make_sampling("adaptive", SamplingSpec(policy="full", guard_band=0.2))
        assert isinstance(controller, AdaptiveSamplingController)
        assert controller.spec.policy == "adaptive"
        assert controller.spec.guard_band == 0.2

    def test_register_rejects_duplicates_and_empty_names(self):
        with pytest.raises(TelemetryError):
            register_sampling_policy("full", SamplingController)
        with pytest.raises(TelemetryError):
            register_sampling_policy("", SamplingController)

    def test_register_replace_roundtrip(self):
        register_sampling_policy("test-probe", SamplingController)
        try:
            assert "test-probe" in registered_sampling_policies()
            register_sampling_policy("test-probe", AdaptiveSamplingController, replace=True)
            assert isinstance(make_sampling("test-probe"), AdaptiveSamplingController)
        finally:
            from repro.telemetry.sampling import _REGISTRY

            _REGISTRY._entries.pop("test-probe", None)

    def test_resolve_none_is_full(self):
        controller = resolve_sampling(None)
        assert type(controller) is SamplingController
        assert controller.exports_metrics is False

    def test_resolve_passes_controllers_through(self):
        controller = AdaptiveSamplingController()
        assert resolve_sampling(controller) is controller

    def test_resolve_coerces_spec_and_name(self):
        by_spec = resolve_sampling(SamplingSpec(policy="threshold-aware"))
        assert isinstance(by_spec, ThresholdAwareSamplingController)
        by_name = resolve_sampling("adaptive")
        assert isinstance(by_name, AdaptiveSamplingController)

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TelemetryError):
            resolve_sampling(42)


#: Utilization far from the default (0.2, 0.8) edges and their guard band.
COLD = dict(cpu=0.5, memory=0.5, network=0.5)


def _observe(controller, node, now, *, churn=0, containers=1, **values):
    merged = {**COLD, **values}
    controller.observe_node(
        node, now, containers=containers, churn=churn, **merged
    )


class TestAdaptiveController:
    def test_quiet_node_cadence_decays_exponentially(self):
        controller = AdaptiveSamplingController(SamplingSpec(policy="adaptive", max_backoff=8))
        now = 0.0
        intervals = []
        for _ in range(6):
            assert controller.node_due("n0", now)
            _observe(controller, "n0", now)
            interval = controller._interval["n0"]
            intervals.append(interval)
            now = controller._due["n0"]
        # x2 per quiet observation, capped at max_backoff.
        assert intervals == [2, 4, 8, 8, 8, 8]

    def test_not_due_between_collections(self):
        controller = AdaptiveSamplingController()
        _observe(controller, "n0", 0.0)  # quiet: next due at 2 * sample_every
        assert not controller.node_due("n0", 5.0)
        assert controller.node_due("n0", 10.0)

    def test_guard_band_keeps_full_cadence(self):
        controller = AdaptiveSamplingController()
        _observe(controller, "n0", 0.0, cpu=0.78)  # within 0.1 of the 0.8 edge
        assert controller._interval["n0"] == 1
        _observe(controller, "n1", 0.0, memory=0.25)  # within 0.1 of the 0.2 edge
        assert controller._interval["n1"] == 1

    def test_above_ceiling_is_always_hot(self):
        controller = AdaptiveSamplingController()
        _observe(controller, "n0", 0.0, network=0.95)
        assert controller._interval["n0"] == 1

    def test_churn_opens_a_per_node_hot_window(self):
        spec = SamplingSpec(policy="adaptive", hot_seconds=10.0)
        controller = AdaptiveSamplingController(spec)
        _observe(controller, "n0", 0.0, churn=2)
        assert controller._interval["n0"] == 1
        # Still inside the window: cold values, yet full cadence holds.
        _observe(controller, "n0", 5.0)
        assert controller._interval["n0"] == 1
        # Window lapsed: the node starts decaying again.
        _observe(controller, "n0", 11.0)
        assert controller._interval["n0"] == 2
        # Other nodes never saw the churn and decay independently.
        _observe(controller, "n1", 5.0)
        assert controller._interval["n1"] == 2

    def test_oom_kill_forces_a_fleet_wide_sweep(self):
        controller = AdaptiveSamplingController()
        _observe(controller, "n0", 0.0)  # quiet: not due again until t=10
        controller.begin_sample(5.0, oom_kills=1.0, actions_applied=0.0)
        assert controller.node_due("n0", 5.0)
        # The sweep is one pass only: the same counter value next pass
        # does not re-trigger it.
        controller.begin_sample(7.0, oom_kills=1.0, actions_applied=0.0)
        assert not controller.node_due("n0", 7.0)

    def test_scale_actions_do_not_force_a_sweep(self):
        # A busy autoscaler applies actions nearly every pass; pinning the
        # whole fleet on them would degenerate to full cadence.
        controller = AdaptiveSamplingController()
        _observe(controller, "n0", 0.0)
        controller.begin_sample(5.0, oom_kills=0.0, actions_applied=3.0)
        assert not controller.node_due("n0", 5.0)

    def test_skipped_nodes_report_bounded_staleness(self):
        spec = SamplingSpec(policy="adaptive", max_backoff=4)
        controller = AdaptiveSamplingController(spec)
        assert controller.max_staleness() == pytest.approx(4 * 5.0)
        _observe(controller, "n0", 0.0)
        controller.begin_sample(8.0, oom_kills=0.0, actions_applied=0.0)
        controller.skip_node("n0", 8.0)
        assert controller.last_pass_staleness() == pytest.approx(8.0)

    def test_skips_are_charged_to_the_budget(self):
        controller = AdaptiveSamplingController()
        controller.skip_node("n0", 5.0)
        assert controller.budget.nodes_skipped == 1
        assert controller.budget.collection_cost_seconds == pytest.approx(
            controller.spec.cost.per_skip_seconds
        )


def _fake_cluster(*targets: float) -> SimpleNamespace:
    services = {
        f"svc-{i}": SimpleNamespace(spec=SimpleNamespace(target_utilization=t))
        for i, t in enumerate(targets)
    }
    return SimpleNamespace(services=services)


class TestThresholdAwareController:
    def test_edges_come_from_the_fleet(self):
        controller = ThresholdAwareSamplingController()
        controller.bind(
            cluster=_fake_cluster(0.7, 0.5, 0.7),
            registry=NULL_REGISTRY,
            sample_every=5.0,
        )
        assert controller._edges == (0.5, 0.7)

    def test_empty_fleet_keeps_the_spec_edges(self):
        controller = ThresholdAwareSamplingController()
        controller.bind(cluster=_fake_cluster(), registry=NULL_REGISTRY, sample_every=5.0)
        assert controller._edges == (controller.spec.hot_low, controller.spec.hot_high)


class TestInstrumentExports:
    def test_full_controller_mints_no_monitoring_families(self):
        registry = MetricRegistry()
        controller = SamplingController()
        controller.bind(cluster=_fake_cluster(0.5), registry=registry, sample_every=5.0)
        assert len(registry) == 0

    def test_adaptive_controller_mints_cost_families(self):
        registry = MetricRegistry()
        controller = AdaptiveSamplingController()
        controller.bind(cluster=_fake_cluster(0.5), registry=registry, sample_every=5.0)
        names = {family.name for family in registry.families()}
        assert "monitoring_collection_cost_seconds" in names
        assert "monitoring_nodes_observed" in names
        assert "monitoring_staleness_seconds_max" in names

    def test_null_registry_bind_mints_nothing(self):
        controller = AdaptiveSamplingController()
        controller.bind(cluster=_fake_cluster(0.5), registry=NULL_REGISTRY, sample_every=5.0)
        assert len(NULL_REGISTRY) == 0
        assert controller._instruments is None

    def test_finish_sample_publishes_budget_deltas(self):
        registry = MetricRegistry()
        controller = AdaptiveSamplingController()
        controller.bind(cluster=_fake_cluster(0.5), registry=registry, sample_every=5.0)
        controller.begin_sample(0.0, oom_kills=0.0, actions_applied=0.0)
        _observe(controller, "n0", 0.0, containers=3)
        controller.skip_node("n1", 0.0)
        controller.finish_sample(0.0)
        observed = registry.get("monitoring_nodes_observed").labels()
        skipped = registry.get("monitoring_nodes_skipped").labels()
        containers = registry.get("monitoring_containers_observed").labels()
        assert observed.value == 1.0
        assert skipped.value == 1.0
        assert containers.value == 3.0
        # Deltas, not totals: a second pass adds only its own work.
        controller.begin_sample(5.0, oom_kills=0.0, actions_applied=0.0)
        _observe(controller, "n1", 5.0, containers=2)
        controller.finish_sample(5.0)
        assert observed.value == 2.0
        assert containers.value == 5.0


class TestNullRegistryExplicitNullness:
    def test_retention_kwarg_is_rejected(self):
        with pytest.raises(TelemetryError, match="retention does not apply"):
            NullRegistry(retention=240)

    def test_retention_is_zero_not_fabricated(self):
        assert NullRegistry().retention == 0
        assert NULL_REGISTRY.retention == 0

    def test_null_ness_is_the_shared_instrument_discipline(self):
        assert isinstance(NULL_REGISTRY, NullInstrument)
        assert not isinstance(MetricRegistry(), NullInstrument)


def _fresh_simulation(seed: int, **kwargs) -> Simulation:
    """A small busy run, mirroring the determinism-suite probe."""
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=seed)
    specs = [
        MicroserviceSpec(
            name=f"svc-{i}", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=8
        )
        for i in range(2)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
        )
        for spec in specs
    ]
    return Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy=HyScaleCpuMem(),
        workload_label="sampling-probe",
        **kwargs,
    )


def _exports(simulation: Simulation, registry: MetricRegistry) -> tuple[str, str]:
    now = simulation.engine.clock.now
    return render_openmetrics(registry), snapshot_to_jsonl(registry, now=now)


class TestEndToEndContracts:
    def test_sampling_requires_a_recording_registry(self):
        with pytest.raises(ExperimentError, match="recording telemetry registry"):
            _fresh_simulation(7, sampling="adaptive")

    def test_full_sampling_is_byte_identical_to_the_default_build(self):
        default_registry = MetricRegistry()
        default = _fresh_simulation(7, telemetry=default_registry)
        default_summary = default.run(60.0).to_dict()

        full_registry = MetricRegistry()
        full = _fresh_simulation(7, telemetry=full_registry, sampling="full")
        full_summary = full.run(60.0).to_dict()

        assert full_summary == default_summary
        assert _exports(full, full_registry) == _exports(default, default_registry)

    def test_adaptive_sampling_does_not_perturb_the_run(self):
        bare = _fresh_simulation(7)
        bare_summary = bare.run(60.0).to_dict()
        bare_events = list(bare.collector.events.events())

        sampled = _fresh_simulation(7, telemetry=MetricRegistry(), sampling="adaptive")
        sampled_summary = sampled.run(60.0).to_dict()
        sampled_events = list(sampled.collector.events.events())

        assert sampled_summary == bare_summary
        assert sampled_events == bare_events

    def test_adaptive_run_exports_monitoring_families_and_charges_budget(self):
        registry = MetricRegistry()
        simulation = _fresh_simulation(7, telemetry=registry, sampling="adaptive")
        simulation.run(60.0)
        controller = simulation.telemetry.sampling
        assert isinstance(controller, AdaptiveSamplingController)
        budget = controller.budget
        assert budget.captures > 0
        assert budget.nodes_observed > 0
        assert budget.collection_cost_seconds > 0.0
        text = render_openmetrics(registry)
        assert "monitoring_collection_cost_seconds" in text
        assert "monitoring_nodes_skipped" in text

    def test_full_run_keeps_the_legacy_export_namespace(self):
        registry = MetricRegistry()
        simulation = _fresh_simulation(7, telemetry=registry, sampling="full")
        simulation.run(60.0)
        # The ledger still exists (comparable across policies)...
        assert simulation.telemetry.sampling.budget.captures > 0
        # ...but no monitoring_* series leak into the default export.
        assert "monitoring_" not in render_openmetrics(registry)
