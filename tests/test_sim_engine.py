"""Tests for the time-stepped engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import Engine


class Recorder:
    """Actor that records the time of each step it sees."""

    def __init__(self):
        self.times: list[float] = []

    def on_step(self, clock: SimClock) -> None:
        self.times.append(clock.now)


class TestActors:
    def test_actors_run_in_registration_order(self):
        engine = Engine(dt=1.0)
        order = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def on_step(self, clock):
                order.append(self.tag)

        engine.add_actor("b-second", Tagged("second"))
        engine.add_actor("a-first-by-name-but-later", Tagged("third"))
        engine.step()
        assert order == ["second", "third"]

    def test_duplicate_names_rejected(self):
        engine = Engine()
        engine.add_actor("x", Recorder())
        with pytest.raises(SimulationError):
            engine.add_actor("x", Recorder())

    def test_non_actor_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.add_actor("bad", object())

    def test_actor_names(self):
        engine = Engine()
        engine.add_actor("one", Recorder())
        engine.add_actor("two", Recorder())
        assert engine.actor_names == ["one", "two"]


class TestRun:
    def test_run_for_executes_expected_steps(self):
        engine = Engine(dt=0.5)
        recorder = Recorder()
        engine.add_actor("r", recorder)
        steps = engine.run_for(10.0)
        assert steps == 20
        assert recorder.times[0] == 0.5
        assert recorder.times[-1] == pytest.approx(10.0)

    def test_run_steps(self):
        engine = Engine(dt=1.0)
        recorder = Recorder()
        engine.add_actor("r", recorder)
        engine.run_steps(7)
        assert len(recorder.times) == 7

    def test_run_for_rejects_negative(self):
        with pytest.raises(SimulationError):
            Engine().run_for(-1.0)

    def test_run_steps_rejects_negative(self):
        with pytest.raises(SimulationError):
            Engine().run_steps(-1)

    def test_consecutive_run_for_calls_accumulate(self):
        engine = Engine(dt=1.0)
        engine.run_for(3.0)
        engine.run_for(2.0)
        assert engine.clock.now == pytest.approx(5.0)


class TestEvents:
    def test_call_after_fires_at_right_step(self):
        engine = Engine(dt=1.0)
        fired = []
        engine.call_after(2.5, lambda: fired.append(engine.clock.now))
        engine.run_for(5.0)
        assert fired == [3.0]  # first step whose end time >= 2.5

    def test_call_at_absolute(self):
        engine = Engine(dt=1.0)
        fired = []
        engine.call_at(4.0, lambda: fired.append(True))
        engine.run_for(3.0)
        assert fired == []
        engine.run_for(1.0)
        assert fired == [True]

    def test_events_fire_after_actors(self):
        engine = Engine(dt=1.0)
        order = []

        class A:
            def on_step(self, clock):
                order.append("actor")

        engine.add_actor("a", A())
        engine.call_at(1.0, lambda: order.append("event"))
        engine.step()
        assert order == ["actor", "event"]
