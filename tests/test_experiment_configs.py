"""Tests for the canonical experiment configurations."""

import pytest

from repro.core.hyscale import HyScaleCpu
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.kubernetes import KubernetesHpa
from repro.core.network import NetworkHpa
from repro.errors import ExperimentError
from repro.experiments.configs import (
    ALGORITHMS,
    Scale,
    bitbrains,
    cpu_bound,
    make_policy,
    memory_bound,
    mixed,
    network_bound,
)


class TestPolicyFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("kubernetes", KubernetesHpa),
            ("network", NetworkHpa),
            ("hybrid", HyScaleCpu),
            ("hybridmem", HyScaleCpuMem),
        ],
    )
    def test_builds_each_algorithm(self, name, cls):
        policy = make_policy(name)
        assert isinstance(policy, cls)
        assert policy.name == name

    def test_intervals_from_config(self):
        from repro.config import SimulationConfig

        config = SimulationConfig(scale_up_interval=7.0, scale_down_interval=70.0)
        policy = make_policy("kubernetes", config)
        assert policy.guard.up_interval == 7.0
        assert policy.guard.down_interval == 70.0

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            make_policy("magic")

    def test_algorithms_constant_matches_factory(self):
        for name in ALGORITHMS:
            make_policy(name)


class TestSpecs:
    @pytest.mark.parametrize("factory", [cpu_bound, memory_bound, mixed, network_bound])
    def test_fleet_shape(self, factory):
        scale = Scale.current()
        spec = factory("low")
        assert len(spec.specs) == scale.n_services
        assert len(spec.loads) == scale.n_services
        assert spec.duration == scale.duration
        assert {s.name for s in spec.specs} == {l.service for l in spec.loads}

    def test_bursts_differ(self):
        low = cpu_bound("low")
        high = cpu_bound("high")
        lo = low.loads[0].pattern
        hi = high.loads[0].pattern
        # High burst reaches a higher peak than the low-burst swell.
        lo_max = max(lo.rate(t) for t in range(0, 150))
        hi_max = max(hi.rate(t) for t in range(0, 150))
        assert hi_max > lo_max

    def test_unknown_burst_rejected(self):
        with pytest.raises(ExperimentError):
            cpu_bound("medium")

    def test_paper_settings_in_specs(self):
        spec = cpu_bound("low")
        first = spec.specs[0]
        assert first.target_utilization == 0.5
        assert first.max_replicas == 16
        assert spec.config.monitor_period == 5.0

    def test_phases_staggered(self):
        spec = cpu_bound("high")
        rates_at_t0 = {load.pattern.rate(0.0) for load in spec.loads}
        assert len(rates_at_t0) > 1  # tenants do not spike in lockstep

    def test_bitbrains_spec(self):
        spec = bitbrains()
        scale = Scale.current()
        assert len(spec.specs) == scale.n_services
        assert spec.label == "bitbrains/rnd"
        # Trace-driven loads vary over time.
        load = spec.loads[0]
        rates = [load.pattern.rate(t) for t in range(0, int(spec.duration), 30)]
        assert max(rates) > min(rates)

    def test_seed_changes_workload(self):
        a = bitbrains(seed=1)
        b = bitbrains(seed=2)
        ra = [a.loads[0].pattern.rate(t) for t in range(0, 200, 20)]
        rb = [b.loads[0].pattern.rate(t) for t in range(0, 200, 20)]
        assert ra != rb


class TestRunPlumbing:
    def test_run_accepts_string_or_policy(self):
        spec = cpu_bound("low")
        # Shrink drastically for a smoke run.
        from dataclasses import replace

        small = replace(spec, duration=20.0, specs=spec.specs[:2], loads=spec.loads[:2])
        by_name = small.run("hybrid")
        by_instance = small.run(HyScaleCpu())
        assert by_name.algorithm == by_instance.algorithm == "hybrid"
        assert by_name.total_requests == by_instance.total_requests


class TestSuite:
    def test_reproduce_subset(self):
        from repro.experiments.suite import FIGURES, reproduce_evaluation

        messages = []
        result = reproduce_evaluation(figures=("fig6a",), progress=messages.append)
        assert set(result.figures) == {"fig6a"}
        assert set(result.figures["fig6a"]) == set(FIGURES["fig6a"][1])
        assert result.speedup("fig6a", "hybrid") > 1.0
        assert len(result.fig2) == 5 and len(result.fig3) == 5
        assert messages  # progress callback fired

    def test_reproduce_unknown_figure_rejected(self):
        from repro.experiments.suite import reproduce_evaluation

        with pytest.raises(KeyError):
            reproduce_evaluation(figures=("fig99",))

    def test_render_includes_claims(self):
        from repro.experiments.suite import render_reproduction, reproduce_evaluation

        result = reproduce_evaluation(figures=("fig6a",))
        text = render_reproduction(result)
        assert "1.49x" in text  # the paper's claim is printed alongside
