"""Tests for the network scaling algorithm (Section IV-A2)."""

from repro.core.actions import AddReplica, RemoveReplica
from repro.core.network import NetworkHpa

from tests.conftest import make_replica, make_service, make_view


class TestMetricSwap:
    def test_uses_bandwidth_not_cpu(self):
        """A bandwidth-saturated, CPU-idle service must scale out."""
        view = make_view(
            services=(
                make_service(
                    "cdn",
                    (
                        make_replica(
                            "c1",
                            cpu_request=0.5,
                            cpu_usage=0.01,  # CPU idle
                            net_rate=50.0,
                            net_usage=75.0,  # bandwidth 150 % of rate
                        ),
                    ),
                ),
            )
        )
        actions = NetworkHpa().decide(view)
        adds = [a for a in actions if isinstance(a, AddReplica)]
        # util 1.5 / 0.5 target = 3 desired.
        assert len(adds) == 2

    def test_ignores_cpu_saturation(self):
        """A CPU-saturated but network-idle service is left alone."""
        view = make_view(
            services=(
                make_service(
                    "compute",
                    (
                        make_replica(
                            "c1",
                            cpu_request=0.5,
                            cpu_usage=4.0,  # CPU on fire
                            net_rate=50.0,
                            net_usage=25.0,  # exactly at 50 % target
                        ),
                    ),
                ),
            )
        )
        assert NetworkHpa().decide(view) == []

    def test_scales_in_when_bandwidth_idle(self):
        replicas = tuple(
            make_replica(f"c{i}", net_rate=50.0, net_usage=0.5) for i in range(4)
        )
        view = make_view(services=(make_service("cdn", replicas),))
        removals = [a for a in NetworkHpa().decide(view) if isinstance(a, RemoveReplica)]
        assert len(removals) == 3

    def test_same_formula_as_kubernetes(self):
        """The paper: 'uses the same algorithm as Kubernetes, but replaces
        CPU usage for outgoing network bandwidth usage'."""
        service = make_service(
            "svc",
            (
                make_replica("a", net_rate=100.0, net_usage=100.0),  # util 1.0
                make_replica("b", net_rate=100.0, net_usage=50.0),  # util 0.5
            ),
            target=0.5,
        )
        assert NetworkHpa().desired_replicas(service) == 3

    def test_inherits_anti_thrash(self):
        policy = NetworkHpa(scale_up_interval=3.0, scale_down_interval=50.0)
        view = make_view(
            services=(
                make_service("cdn", (make_replica("c1", net_rate=50.0, net_usage=100.0),)),
            ),
            now=10.0,
        )
        assert policy.decide(view) != []
        view2 = make_view(
            services=(
                make_service("cdn", (make_replica("c1", net_rate=50.0, net_usage=100.0),)),
            ),
            now=11.0,
        )
        assert policy.decide(view2) == []

    def test_name_and_metric(self):
        policy = NetworkHpa()
        assert policy.name == "network"
        assert policy.metric == "network"
