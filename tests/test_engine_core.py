"""Units for the array engine core: store, views, node fast paths, registry.

The end-to-end bit-identity contract lives in ``test_backend_parity`` and
``repro.engine_core.check``; these tests pin the pieces in isolation so a
parity break localises to one mechanism.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.engine_core import (
    ArrayCluster,
    ClusterState,
    ContainerView,
    NodeView,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.engine_core.backend import _REGISTRY
from repro.errors import ClusterError, ContainerNotFound, ExperimentError
from repro.platform.node_manager import NodeManager
from repro.workloads.requests import Request


def make_request(cpu=0.5, mem=10.0, net=0.0, timeout=30.0) -> Request:
    return Request(
        service="svc",
        arrival_time=0.0,
        cpu_work=cpu,
        mem_footprint=mem,
        net_mbits=net,
        timeout=timeout,
    )


def make_node_view(overheads, store=None, name="node-00", cpu=4.0) -> NodeView:
    store = store or ClusterState()
    return NodeView(name, ResourceVector(cpu, 8192.0, 1000.0), overheads, store=store)


def make_view(node: NodeView, service="svc", *, cpu=0.5, mem=512.0, net=50.0, boot=0.0):
    container = node.make_container(
        service, 0, cpu_request=cpu, mem_limit=mem, net_rate=net, boot_delay=boot
    )
    node.add_container(container)
    return container


class TestClusterState:
    def test_alloc_grows_past_initial_capacity(self):
        store = ClusterState(capacity=2)
        slots = [store.alloc() for _ in range(5)]
        assert slots == [0, 1, 2, 3, 4]
        assert store.n == 5

    def test_put_get_round_trip(self):
        store = ClusterState()
        slot = store.alloc()
        store.put("cpu_usage", slot, 0.75)
        assert store.get("cpu_usage", slot) == 0.75

    def test_get_returns_plain_float(self):
        """np.float64 must never leak: summaries are JSON-encoded."""
        store = ClusterState()
        slot = store.alloc()
        store.put("mem_usage", slot, 150.0)
        value = store.get("mem_usage", slot)
        assert type(value) is float
        json.dumps(value)

    def test_fill_and_take(self):
        store = ClusterState()
        slots = [store.alloc() for _ in range(4)]
        packed = store.pack_slots(slots[1:3])
        store.fill("net_usage", packed, 9.0)
        assert store.take_list("net_usage", packed) == [9.0, 9.0]
        assert store.get("net_usage", slots[0]) == 0.0


class TestContainerView:
    def test_fields_live_in_the_store(self, overheads):
        node = make_node_view(overheads)
        view = make_view(node, cpu=0.5, mem=512.0)
        slot = view._slot
        assert node._store.get("cpu_request", slot) == 0.5
        view.cpu_usage = 0.25
        assert node._store.get("cpu_usage", slot) == 0.25
        assert type(view.mem_limit) is float

    def test_views_behave_as_containers(self, overheads):
        node = make_node_view(overheads)
        view = make_view(node)
        assert isinstance(view, Container)
        request = make_request()
        view.accept(request, 0.0)
        assert view.inflight == [request]

    def test_loaded_set_tracks_inflight(self, overheads):
        node = make_node_view(overheads)
        view = make_view(node)
        assert not node._loaded
        view.accept(make_request(cpu=0.2), 0.0)
        assert view.container_id in node._loaded
        node.step(1.0, 1.0)  # enough grant to finish and settle the request
        assert not view.inflight
        assert view.container_id not in node._loaded

    def test_terminate_clears_loaded(self, overheads):
        node = make_node_view(overheads)
        view = make_view(node)
        view.accept(make_request(cpu=50.0), 0.0)
        view.terminate(1.0)
        assert view.container_id not in node._loaded


class TestNodeViewBookkeeping:
    def test_rejects_plain_containers(self, overheads):
        node = make_node_view(overheads)
        plain = Container("svc", 0, cpu_request=0.5, mem_limit=512.0, net_rate=0.0)
        with pytest.raises(ClusterError, match="make_container"):
            node.add_container(plain)

    def test_rejects_foreign_store(self, overheads):
        node_a = make_node_view(overheads)
        node_b = make_node_view(overheads, store=ClusterState(), name="node-01")
        view = node_a.make_container("svc", 0, cpu_request=0.5, mem_limit=512.0, net_rate=0.0)
        with pytest.raises(ClusterError, match="different cluster store"):
            node_b.add_container(view)

    def test_pending_counter_follows_boot(self, overheads):
        node = make_node_view(overheads)
        view = make_view(node, boot=2.0)
        assert view.state is ContainerState.PENDING
        assert node._n_pending == 1
        node.step(1.0, 1.0)
        node.step(2.0, 1.0)
        assert view.state is ContainerState.RUNNING
        assert node._n_pending == 0

    def test_oom_counter_and_maybe_oom_kills(self, overheads):
        node = make_node_view(overheads)
        view = make_view(node, mem=120.0)  # base 100, factor 2.0 -> threshold 240
        assert not node.maybe_oom_kills()
        # A working set past the threshold OOM-kills during settle.
        # Admission alone allocates a quarter of the footprint: 100 base +
        # 175 resident > the 240 threshold, so the first settle kills it.
        view.accept(make_request(cpu=50.0, mem=700.0, timeout=1000.0), 0.0)
        node.step(1.0, 1.0)
        assert view.state is ContainerState.OOM_KILLED
        assert node.maybe_oom_kills()
        node.remove_container(view.container_id, 2.0)
        assert not node.maybe_oom_kills()

    def test_detach_unregisters(self, overheads):
        store = ClusterState()
        node_a = make_node_view(overheads, store=store)
        node_b = make_node_view(overheads, store=store, name="node-01")
        view = make_view(node_a)
        moved = node_a.detach_container(view.container_id)
        assert moved is view and view._host is None
        node_b.add_container(moved)
        assert view._host is node_b


class TestQuietStepEquivalence:
    """The quiet-node kernel vs the scalar step, field by field."""

    FIELDS = ("cpu_usage", "mem_usage", "net_usage", "disk_usage", "_net_cpu_headroom")

    def _twin_nodes(self, overheads, n_containers, *, cpu=4.0):
        scalar = Node("node-00", ResourceVector(cpu, 8192.0, 1000.0), overheads)
        view = make_node_view(overheads, cpu=cpu)
        for i in range(n_containers):
            for node in (scalar, view):
                container = node.make_container(
                    f"svc-{i}", 0, cpu_request=0.05, mem_limit=256.0, net_rate=1.0,
                    container_id=f"svc-{i}.r0.c{i}",
                )
                node.add_container(container, enforce_capacity=False)
        return scalar, view

    @pytest.mark.parametrize("n_containers", [0, 1, 7])
    def test_idle_step_matches_scalar(self, overheads, n_containers):
        scalar, view = self._twin_nodes(overheads, n_containers)
        scalar.step(1.0, 1.0)
        view.step(1.0, 1.0)
        for cid in scalar.containers:
            for field in self.FIELDS:
                assert getattr(view.containers[cid], field) == getattr(
                    scalar.containers[cid], field
                ), f"{cid}.{field}"
        assert view.last_oom_kills == scalar.last_oom_kills == []

    def test_loaded_node_takes_the_scalar_path(self, overheads):
        scalar, view = self._twin_nodes(overheads, 3)
        for node in (scalar, view):
            node.containers["svc-0.r0.c0"].accept(make_request(cpu=1.0, net=5.0), 0.0)
        scalar.step(1.0, 1.0)
        view.step(1.0, 1.0)
        for cid in scalar.containers:
            for field in self.FIELDS:
                assert getattr(view.containers[cid], field) == getattr(
                    scalar.containers[cid], field
                ), f"{cid}.{field}"

    def test_oversubscribed_quiet_node_falls_back(self, overheads):
        """Past the half-capacity margin the kernel must not fire; the
        scalar fair share is no longer provably trivial."""
        import dataclasses

        overheads = dataclasses.replace(overheads, container_background_cpu=0.02)
        scalar, view = self._twin_nodes(overheads, 90, cpu=1.0)
        scalar.step(1.0, 1.0)
        view.step(1.0, 1.0)
        for cid in scalar.containers:
            assert view.containers[cid].cpu_usage == scalar.containers[cid].cpu_usage


class TestNodeStatsBuffer:
    def _manager_pair(self, overheads):
        """A scalar NM and an array NM over twin single-container nodes."""
        from repro.dockersim.daemon import DockerDaemon

        scalar_node = Node("node-00", ResourceVector(4.0, 8192.0, 1000.0), overheads)
        view_node = make_node_view(overheads)
        managers = []
        for node in (scalar_node, view_node):
            container = node.make_container(
                "svc", 0, cpu_request=0.5, mem_limit=512.0, net_rate=50.0,
                container_id="svc.r0.c1",
            )
            node.add_container(container)
            managers.append(NodeManager(DockerDaemon(node), window_horizon=30.0))
        return managers

    def test_mean_stats_matches_stats_window(self, overheads):
        scalar_nm, array_nm = self._manager_pair(overheads)
        assert array_nm._buffer is not None and scalar_nm._buffer is None

        class _Clock:
            now = 0.0

        clock = _Clock()
        for step in range(6):
            clock.now = float(step)
            for nm in (scalar_nm, array_nm):
                nm.node.containers["svc.r0.c1"].cpu_usage = 0.1 * step
                nm.node.containers["svc.r0.c1"].mem_usage = 100.0 + step
                nm.on_step(clock)
        assert array_nm.tracked_containers() == scalar_nm.tracked_containers()
        for window in (2.0, 30.0):
            assert array_nm.mean_stats("svc.r0.c1", window) == scalar_nm.mean_stats(
                "svc.r0.c1", window
            )

    def test_unknown_container_raises(self, overheads):
        _, array_nm = self._manager_pair(overheads)

        class _Clock:
            now = 0.0

        array_nm.on_step(_Clock())
        with pytest.raises(ContainerNotFound):
            array_nm.mean_stats("ghost.r0.c9", 30.0)

    def test_departure_drops_history(self, overheads):
        _, array_nm = self._manager_pair(overheads)

        class _Clock:
            now = 0.0

        array_nm.on_step(_Clock())
        assert array_nm.tracked_containers() == ["svc.r0.c1"]
        array_nm.node.remove_container("svc.r0.c1", 1.0)
        clock = _Clock()
        clock.now = 1.0
        array_nm.on_step(clock)
        assert array_nm.tracked_containers() == []


class TestArrayCluster:
    def test_sorted_nodes_cache_invalidates(self, overheads):
        cluster = ArrayCluster(overheads)
        for name in ("node-01", "node-00"):
            cluster.add_node(cluster.make_node(name, ResourceVector(4.0, 8192.0, 1000.0),
                                               disk_capacity=150.0))
        first = cluster.sorted_nodes()
        assert [n.name for n in first] == ["node-00", "node-01"]
        assert cluster.sorted_nodes() is first
        cluster.remove_node("node-00", 0.0)
        assert [n.name for n in cluster.sorted_nodes()] == ["node-01"]

    def test_metrics_totals_matches_scalar_loop(self, overheads):
        cluster = ArrayCluster(overheads)
        cluster.add_node(cluster.make_node("node-00", ResourceVector(4.0, 8192.0, 1000.0),
                                           disk_capacity=150.0))
        node = cluster.node("node-00")
        for i in range(3):
            container = node.make_container(
                f"svc-{i}", 0, cpu_request=0.5, mem_limit=512.0, net_rate=50.0,
                container_id=f"svc-{i}.r0.c{i}",
            )
            node.add_container(container)
            container.cpu_usage = 0.1 * (i + 1)
            container.mem_usage = 100.0 + i
        container.accept(make_request(cpu=5.0), 0.0)
        cpu = mem = net = cpu_alloc = mem_alloc = 0.0
        inflight = 0
        for c in node.containers.values():
            if c.is_active:
                cpu += c.cpu_usage
                mem += c.mem_usage
                net += c.net_usage
                cpu_alloc += c.cpu_request
                mem_alloc += c.mem_limit
                inflight += len(c.inflight)
        assert cluster.metrics_totals() == (cpu, mem, net, cpu_alloc, mem_alloc, inflight, 1)


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert registered_backends() == ("array", "object")
        assert resolve_backend("object") is Cluster
        assert resolve_backend("array") is ArrayCluster

    def test_unknown_backend_raises(self):
        with pytest.raises(ExperimentError, match="unknown engine backend"):
            resolve_backend("quantum")

    def test_register_and_replace_guard(self):
        class _Custom(Cluster):
            pass

        register_backend("custom-test", _Custom)
        try:
            assert resolve_backend("custom-test") is _Custom
            with pytest.raises(ExperimentError, match="already registered"):
                register_backend("custom-test", _Custom)
            register_backend("custom-test", Cluster, replace=True)
            assert resolve_backend("custom-test") is Cluster
        finally:
            _REGISTRY._entries.pop("custom-test", None)

    def test_non_cluster_rejected(self):
        with pytest.raises(ExperimentError, match="Cluster subclass"):
            register_backend("bogus", object)  # type: ignore[arg-type]
