"""Tests for cluster snapshots (views)."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import PolicyError

from tests.conftest import make_node_view, make_replica, make_service, make_view


class TestReplicaView:
    def test_utilizations(self):
        replica = make_replica("c1", cpu_request=0.5, cpu_usage=0.25, mem_limit=512.0, mem_usage=256.0)
        assert replica.cpu_utilization == pytest.approx(0.5)
        assert replica.mem_utilization == pytest.approx(0.5)

    def test_zero_allocation_utilization(self):
        replica = make_replica("c1", cpu_request=0.0, net_rate=0.0)
        assert replica.cpu_utilization == 0.0
        assert replica.net_utilization == 0.0


class TestServiceView:
    def test_booting_excluded_from_measurable(self):
        service = make_service(
            replicas=(
                make_replica("a", cpu_usage=1.0),
                make_replica("b", booting=True, cpu_usage=0.0),
            )
        )
        assert service.replica_count == 2
        assert len(service.measurable_replicas()) == 1
        assert service.total_cpu_usage() == pytest.approx(1.0)

    def test_paper_aggregates(self):
        service = make_service(
            replicas=(
                make_replica("a", cpu_request=0.5, cpu_usage=0.4, mem_limit=512, mem_usage=100,
                             net_rate=50, net_usage=5),
                make_replica("b", cpu_request=1.0, cpu_usage=0.6, mem_limit=256, mem_usage=200,
                             net_rate=25, net_usage=20),
            )
        )
        assert service.total_cpu_requested() == pytest.approx(1.5)
        assert service.total_cpu_usage() == pytest.approx(1.0)
        assert service.total_mem_requested() == pytest.approx(768.0)
        assert service.total_mem_usage() == pytest.approx(300.0)
        assert service.total_net_requested() == pytest.approx(75.0)
        assert service.total_net_usage() == pytest.approx(25.0)


class TestNodeView:
    def test_available_clamped(self):
        node = make_node_view(allocated=ResourceVector(5.0, 1000.0, 100.0))
        assert node.available.cpu == 0.0  # over-allocated clamps to zero

    def test_hosts(self):
        node = make_node_view(services=("svc",))
        assert node.hosts("svc")
        assert not node.hosts("other")


class TestClusterView:
    def test_lookup(self):
        view = make_view(services=(make_service("svc", (make_replica("c1"),)),))
        assert view.service("svc").name == "svc"
        assert view.node("n0").name == "n0"
        assert view.node_of(view.service("svc").replicas[0]).name == "n0"

    def test_unknown_lookup_raises(self):
        view = make_view()
        with pytest.raises(PolicyError):
            view.service("ghost")
        with pytest.raises(PolicyError):
            view.node("ghost")

    def test_default_nodes_derived_from_replicas(self):
        view = make_view(
            services=(
                make_service("a", (make_replica("c1", node="n1", cpu_request=1.0),)),
                make_service("b", (make_replica("c2", node="n2", cpu_request=2.0),)),
            )
        )
        assert view.node("n1").allocated.cpu == pytest.approx(1.0)
        assert view.node("n1").hosts("a")
        assert not view.node("n1").hosts("b")

    def test_duplicate_services_rejected(self):
        from repro.core.view import ClusterView

        with pytest.raises(PolicyError):
            ClusterView(now=0.0, services=(make_service("x"), make_service("x")), nodes=())
