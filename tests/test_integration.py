"""End-to-end integration tests: full simulations through the public API."""

import pytest

from repro import (
    HyScaleCpu,
    HyScaleCpuMem,
    KubernetesHpa,
    NetworkHpa,
    Simulation,
    SimulationConfig,
    run_experiment,
)
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.errors import ExperimentError
from repro.workloads import CPU_BOUND, MEMORY_BOUND, ConstantLoad, ServiceLoad


def small_setup(n_services=2, rate=6.0, profile=CPU_BOUND, worker_nodes=4, seed=0):
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=worker_nodes), seed=seed)
    specs = [
        MicroserviceSpec(name=f"svc-{i}", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=8)
        for i in range(n_services)
    ]
    loads = [
        ServiceLoad(service=spec.name, profile=profile, pattern=ConstantLoad(rate))
        for spec in specs
    ]
    return config, specs, loads


class TestEndToEnd:
    @pytest.mark.parametrize(
        "policy_cls", [KubernetesHpa, HyScaleCpu, HyScaleCpuMem, NetworkHpa]
    )
    def test_every_algorithm_completes_a_run(self, policy_cls):
        config, specs, loads = small_setup()
        summary = run_experiment(
            config=config, specs=specs, loads=loads, policy=policy_cls(), duration=60.0
        )
        assert summary.total_requests > 200
        assert summary.algorithm == policy_cls().name
        assert 0.0 <= summary.percent_failed <= 100.0
        assert summary.avg_response_time >= 0.0

    def test_hybrid_performs_vertical_scaling(self):
        config, specs, loads = small_setup(rate=10.0)
        summary = run_experiment(
            config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=60.0
        )
        assert summary.vertical_scale_ops > 0

    def test_kubernetes_only_horizontal(self):
        config, specs, loads = small_setup(rate=10.0)
        summary = run_experiment(
            config=config, specs=specs, loads=loads, policy=KubernetesHpa(), duration=60.0
        )
        assert summary.vertical_scale_ops == 0
        assert summary.horizontal_scale_ups > 0

    def test_overloaded_service_scales_and_recovers(self):
        """Demand beyond one replica's capacity must trigger scaling and
        still complete the bulk of the traffic."""
        config, specs, loads = small_setup(n_services=1, rate=14.0)
        summary = run_experiment(
            config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=90.0
        )
        assert summary.availability > 0.95

    def test_memory_blind_policy_fails_memory_load(self):
        """Section VI: Kubernetes and HYSCALE_CPU 'are unable to handle
        memory-bound loads and crash' — here: OOM kills and failures."""
        config, specs, loads = small_setup(rate=30.0, profile=MEMORY_BOUND)
        blind = run_experiment(
            config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=120.0
        )
        aware = run_experiment(
            config=config, specs=specs, loads=loads, policy=HyScaleCpuMem(), duration=120.0
        )
        assert blind.percent_failed > 1.0
        assert aware.percent_failed < blind.percent_failed

    def test_timeline_sampled(self):
        config, specs, loads = small_setup()
        simulation = Simulation.build(
            config=config, specs=specs, loads=loads, policy=HyScaleCpu()
        )
        summary = simulation.run(30.0)
        assert summary.timeline
        assert summary.timeline[-1].total_replicas >= len(specs)

    def test_initial_deployment_honours_min_replicas(self):
        config, specs, loads = small_setup()
        specs = [
            MicroserviceSpec(name="svc-0", min_replicas=3, max_replicas=8),
        ]
        loads = [ServiceLoad("svc-0", CPU_BOUND, ConstantLoad(1.0))]
        simulation = Simulation.build(config=config, specs=specs, loads=loads, policy=HyScaleCpu())
        assert simulation.cluster.service("svc-0").replica_count == 3


class TestDeterminism:
    def test_same_seed_same_summary(self):
        config, specs, loads = small_setup(seed=17)
        a = run_experiment(config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=45.0)
        b = run_experiment(config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=45.0)
        assert a.total_requests == b.total_requests
        assert a.avg_response_time == pytest.approx(b.avg_response_time)
        assert a.vertical_scale_ops == b.vertical_scale_ops
        assert a.horizontal_scale_ups == b.horizontal_scale_ups

    def test_different_seed_different_arrivals(self):
        config, specs, loads = small_setup(seed=1)
        a = run_experiment(config=config, specs=specs, loads=loads, policy=HyScaleCpu(), duration=45.0)
        config2, specs2, loads2 = small_setup(seed=2)
        b = run_experiment(config=config2, specs=specs2, loads=loads2, policy=HyScaleCpu(), duration=45.0)
        assert a.total_requests != b.total_requests


class TestValidation:
    def test_loads_must_reference_specs(self):
        config, specs, _ = small_setup()
        rogue = [ServiceLoad("ghost", CPU_BOUND, ConstantLoad(1.0))]
        with pytest.raises(ExperimentError):
            Simulation.build(config=config, specs=specs, loads=rogue, policy=HyScaleCpu())

    def test_specs_required(self):
        config, _, _ = small_setup()
        with pytest.raises(ExperimentError):
            Simulation.build(config=config, specs=[], loads=[], policy=HyScaleCpu())

    def test_cluster_too_small_rejected(self):
        config = SimulationConfig(cluster=ClusterConfig(worker_nodes=1))
        specs = [MicroserviceSpec(name="big", cpu_request=3.0, min_replicas=3)]
        loads = [ServiceLoad("big", CPU_BOUND, ConstantLoad(1.0))]
        with pytest.raises(ExperimentError):
            Simulation.build(config=config, specs=specs, loads=loads, policy=HyScaleCpu())
