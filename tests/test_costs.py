"""Tests for the cost/power accounting extension."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.costs import CostReport, PricingModel, cost_comparison_rows, evaluate_costs
from repro.metrics.sla import Sla
from repro.workloads.requests import FailureReason, Request


def point(t: float, active: int = 2, cpu: float = 4.0) -> TimelinePoint:
    return TimelinePoint(
        time=t, total_replicas=2, cpu_usage=cpu, cpu_allocated=4.0,
        mem_usage=0.0, mem_allocated=0.0, net_usage=0.0, inflight=0,
        active_nodes=active, total_nodes=4,
    )


def collector_with_timeline(points, requests=()) -> MetricsCollector:
    collector = MetricsCollector()
    for p in points:
        collector.sample_timeline(p)
    for r in requests:
        collector.record_request(r)
    return collector


class TestPricingModel:
    def test_idle_cluster_draw(self):
        pricing = PricingModel(idle_watts=100.0, peak_watts=200.0, node_cpu=4.0)
        draw = pricing.power_draw(point(0.0, active=3, cpu=0.0))
        assert draw == pytest.approx(300.0)

    def test_fully_loaded_draw(self):
        pricing = PricingModel(idle_watts=100.0, peak_watts=200.0, node_cpu=4.0)
        draw = pricing.power_draw(point(0.0, active=2, cpu=8.0))
        assert draw == pytest.approx(2 * 200.0)

    def test_parked_machines_draw_nothing(self):
        pricing = PricingModel()
        assert pricing.power_draw(point(0.0, active=0, cpu=0.0)) == 0.0

    def test_utilization_capped(self):
        pricing = PricingModel(idle_watts=100.0, peak_watts=200.0, node_cpu=4.0)
        # Work-conserving usage can exceed nominal capacity; draw cannot.
        assert pricing.power_draw(point(0.0, active=1, cpu=100.0)) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            PricingModel(idle_watts=300.0, peak_watts=200.0)
        with pytest.raises(ExperimentError):
            PricingModel(dollars_per_kwh=-1.0)
        with pytest.raises(ExperimentError):
            PricingModel(node_cpu=0.0)


class TestEvaluateCosts:
    def test_energy_integration(self):
        # 2 nodes at full load for 3600 s at 200 W each = 0.4 kWh.
        pricing = PricingModel(idle_watts=100.0, peak_watts=200.0, node_cpu=4.0,
                               dollars_per_kwh=0.10, dollars_per_node_hour=0.0)
        collector = collector_with_timeline([point(0.0, 2, 8.0), point(3600.0, 2, 8.0)])
        report = evaluate_costs(collector, Sla(), pricing)
        assert report.energy_kwh == pytest.approx(0.4)
        assert report.energy_cost == pytest.approx(0.04)
        assert report.node_hours == pytest.approx(2.0)

    def test_penalties_from_requests(self):
        slow = Request(service="s", arrival_time=0.0, cpu_work=0.1)
        slow.complete(10.0)
        failed = Request(service="s", arrival_time=0.0, cpu_work=0.1)
        failed.fail(1.0, FailureReason.CONNECTION)
        collector = collector_with_timeline([point(0.0), point(60.0)], [slow, failed])
        sla = Sla(response_time_target=5.0, penalty_per_violation=0.5)
        report = evaluate_costs(collector, sla)
        assert report.sla_violations == 2
        assert report.penalty_cost == pytest.approx(1.0)

    def test_requires_timeline(self):
        with pytest.raises(ExperimentError):
            evaluate_costs(MetricsCollector(), Sla())

    def test_total_cost_sums_components(self):
        collector = collector_with_timeline([point(0.0), point(3600.0)])
        report = evaluate_costs(collector, Sla())
        assert report.total_cost == pytest.approx(
            report.energy_cost + report.occupancy_cost + report.penalty_cost
        )


class TestComparison:
    def make_report(self, total: float) -> CostReport:
        return CostReport(
            duration=60.0, energy_kwh=0.1, node_hours=1.0, sla_violations=0,
            energy_cost=total, occupancy_cost=0.0, penalty_cost=0.0,
        )

    def test_savings_vs(self):
        cheap = self.make_report(1.0)
        pricey = self.make_report(2.0)
        assert cheap.savings_vs(pricey) == pytest.approx(0.5)

    def test_rows_include_baseline_dash(self):
        rows = cost_comparison_rows(
            {"kubernetes": self.make_report(2.0), "hybridmem": self.make_report(1.0)}
        )
        by_name = {row[0]: row for row in rows}
        assert by_name["kubernetes"][-1] == "-"
        assert "+50.0" in by_name["hybridmem"][-1]

    def test_missing_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            cost_comparison_rows({"hybridmem": self.make_report(1.0)})

    def test_zero_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            self.make_report(1.0).savings_vs(self.make_report(0.0))


class TestEndToEndCosts:
    def test_run_produces_priceable_timeline(self):
        from repro.experiments.configs import cpu_bound, make_policy
        from repro.experiments.runner import Simulation
        from dataclasses import replace

        spec = cpu_bound("low")
        small = replace(spec, duration=30.0, specs=spec.specs[:2], loads=spec.loads[:2])
        sim = Simulation.build(
            config=small.config, specs=list(small.specs), loads=list(small.loads),
            policy=make_policy("hybrid", small.config),
        )
        sim.run(small.duration)
        report = evaluate_costs(sim.collector, Sla())
        assert report.energy_kwh > 0
        assert report.node_hours > 0
