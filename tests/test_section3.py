"""Tests for the Section III microbenchmarks (Figures 2-3, memory table).

These assert the *shapes* the paper reports, which is what the reproduction
promises: CPU response grows with replicas, network execution time falls
and tapers, memory scenarios swap where the paper says they swap.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.section3 import (
    cpu_scaling_curve,
    cpu_scaling_point,
    memory_scaling_table,
    network_scaling_curve,
    network_scaling_point,
)


@pytest.fixture(scope="module")
def fig2():
    return cpu_scaling_curve((1, 2, 4, 8))


@pytest.fixture(scope="module")
def fig3():
    return network_scaling_curve((1, 2, 4, 8, 16))


@pytest.fixture(scope="module")
def mem_table():
    return memory_scaling_table()


class TestFigure2:
    def test_monotone_increase(self, fig2):
        times = [p.avg_response_time for p in fig2]
        assert times == sorted(times)
        assert times[-1] > times[0] * 1.3  # replication costs are material

    def test_all_requests_complete(self, fig2):
        for point in fig2:
            assert point.failed == 0
            assert point.completed == 640

    def test_paper_17pct_contention(self):
        """A single co-located busy pair costs ~17 % service time."""
        from repro.config import OverheadModel

        quiet = OverheadModel(colocation_contention=0.0, colocation_cap=1.0)
        loud = OverheadModel()
        base = cpu_scaling_point(1, overheads=quiet).avg_response_time
        contended = cpu_scaling_point(1, overheads=loud).avg_response_time
        assert contended / base == pytest.approx(1.17, rel=0.05)

    def test_rejects_bad_replicas(self):
        with pytest.raises(ExperimentError):
            cpu_scaling_point(0)


class TestFigure3:
    def test_monotone_decrease(self, fig3):
        times = [p.avg_response_time for p in fig3]
        assert times == sorted(times, reverse=True)

    def test_tapering_after_8(self, fig3):
        """'Tapering off at around 8 replicas': the 8->16 gain is much
        smaller than the 1->2 gain."""
        by_replicas = {p.replicas: p.avg_response_time for p in fig3}
        first_gain = 1.0 - by_replicas[2] / by_replicas[1]
        late_gain = 1.0 - by_replicas[16] / by_replicas[8]
        assert late_gain < first_gain * 0.7

    def test_all_transfers_complete(self, fig3):
        assert all(p.failed == 0 for p in fig3)

    def test_rejects_bad_replicas(self):
        with pytest.raises(ExperimentError):
            network_scaling_point(0)


class TestMemoryTable:
    def rows(self, mem_table):
        return {m.label: m for m in mem_table}

    def test_horizontal_swaps_at_same_total_memory(self, mem_table):
        rows = self.rows(mem_table)
        assert not rows["vertical-512"].swapped
        assert rows["horizontal-2x256"].swapped
        assert (
            rows["horizontal-2x256"].avg_response_time
            > rows["vertical-512"].avg_response_time
        )

    def test_equal_when_neither_swaps(self, mem_table):
        rows = self.rows(mem_table)
        assert rows["horizontal-2x448"].avg_response_time == pytest.approx(
            rows["vertical-512"].avg_response_time, rel=0.35
        )

    def test_more_memory_does_not_speed_up(self, mem_table):
        rows = self.rows(mem_table)
        assert rows["vertical-1024"].avg_response_time == pytest.approx(
            rows["vertical-512"].avg_response_time, rel=0.05
        )

    def test_starved_limit_drastically_degrades(self, mem_table):
        rows = self.rows(mem_table)
        assert rows["vertical-starved-224"].swapped
        assert (
            rows["vertical-starved-224"].avg_response_time
            > 3.0 * rows["vertical-512"].avg_response_time
        )
