"""Property-based tests on the algorithms' equations and decisions.

The paper's equations have algebraic identities worth pinning down
independently of any simulation: signs, fixed points, conservation, and
monotonicity.  Hypothesis explores the input space; the assertions are the
identities.
"""


import pytest
from hypothesis import given, strategies as st

from repro.core.actions import AddReplica, RemoveReplica, VerticalScale
from repro.core.hyscale import HyScaleCpu
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.kubernetes import KubernetesHpa

from tests.conftest import make_replica, make_service, make_view

usage = st.floats(0.0, 8.0, allow_nan=False)
request = st.floats(0.1, 4.0, allow_nan=False)
target = st.floats(0.1, 1.0, allow_nan=False, exclude_min=True)


class TestHpaFormula:
    @given(
        usages=st.lists(usage, min_size=1, max_size=8),
        req=request,
        tgt=target,
    )
    def test_desired_covers_demand(self, usages, req, tgt):
        """ceil(sum(util)/target) replicas at the base request would bring
        average utilization to at most the target (the formula's purpose)."""
        replicas = tuple(
            make_replica(f"c{i}", cpu_request=req, cpu_usage=u) for i, u in enumerate(usages)
        )
        service = make_service("svc", replicas, target=tgt, max_replicas=10_000, base_cpu=req)
        desired = KubernetesHpa().desired_replicas(service)
        total_util = sum(u / req for u in usages)
        if desired < 10_000 and total_util > 0:
            assert total_util / desired <= tgt + 1e-6

    @given(
        usages=st.lists(usage, min_size=1, max_size=8),
        req=request,
        tgt=target,
    )
    def test_desired_is_minimal(self, usages, req, tgt):
        """One replica fewer would exceed the target (no over-provisioning
        beyond the ceiling)."""
        replicas = tuple(
            make_replica(f"c{i}", cpu_request=req, cpu_usage=u) for i, u in enumerate(usages)
        )
        service = make_service(
            "svc", replicas, target=tgt, min_replicas=1, max_replicas=10_000, base_cpu=req
        )
        desired = KubernetesHpa().desired_replicas(service)
        total_util = sum(u / req for u in usages)
        if desired > 1:
            assert total_util / (desired - 1) > tgt - 1e-6 or desired == 1

    @given(low=usage, high=usage, req=request, tgt=target)
    def test_monotone_in_usage(self, low, high, req, tgt):
        if low > high:
            low, high = high, low
        cold = make_service(
            "svc", (make_replica("a", cpu_request=req, cpu_usage=low),), target=tgt,
            max_replicas=10_000,
        )
        hot = make_service(
            "svc", (make_replica("a", cpu_request=req, cpu_usage=high),), target=tgt,
            max_replicas=10_000,
        )
        hpa = KubernetesHpa()
        assert hpa.desired_replicas(hot) >= hpa.desired_replicas(cold)


class TestHyScaleIdentities:
    @given(u=usage, req=request, tgt=target)
    def test_missing_sign_matches_utilization(self, u, req, tgt):
        """Missing > 0 iff overall utilization exceeds the target."""
        service = make_service(
            "svc", (make_replica("a", cpu_request=req, cpu_usage=u),), target=tgt
        )
        missing = HyScaleCpu().missing_cpus(service)
        utilization = u / req
        if utilization > tgt + 1e-9:
            assert missing > 0
        elif utilization < tgt - 1e-9:
            assert missing < 0

    @given(u=usage, req=request, tgt=target)
    def test_reclaim_and_require_are_negatives(self, u, req, tgt):
        """ReclaimableCPUs_r == -RequiredCPUs_r by construction."""
        policy = HyScaleCpu()
        replica = make_replica("a", cpu_request=req, cpu_usage=u)
        assert policy.reclaimable_cpus(replica, tgt) == pytest.approx(
            -policy.required_cpus(replica, tgt)
        )

    @given(u=usage, req=request, tgt=target)
    def test_post_reclaim_utilization_hits_headroom_target(self, u, req, tgt):
        """Applying the reclaim formula lands utilization exactly at
        0.9 * Target (the paper's design point)."""
        policy = HyScaleCpu()
        replica = make_replica("a", cpu_request=req, cpu_usage=u)
        reclaim = policy.reclaimable_cpus(replica, tgt)
        new_request = req - reclaim
        if new_request > 1e-9 and u > 1e-9:
            assert u / new_request == pytest.approx(0.9 * tgt)


@st.composite
def starved_cluster(draw):
    """One or two starved services sharing a small set of nodes."""
    n_services = draw(st.integers(1, 2))
    services = []
    for s in range(n_services):
        n_replicas = draw(st.integers(1, 3))
        replicas = tuple(
            make_replica(
                f"s{s}c{i}",
                service=f"svc{s}",
                node=f"n{draw(st.integers(0, 2))}",
                cpu_request=draw(st.floats(0.1, 1.0, allow_nan=False)),
                cpu_usage=draw(st.floats(0.5, 4.0, allow_nan=False)),
                mem_limit=draw(st.floats(200.0, 1024.0, allow_nan=False)),
                mem_usage=draw(st.floats(50.0, 2000.0, allow_nan=False)),
            )
            for i in range(n_replicas)
        )
        services.append(make_service(f"svc{s}", replicas, max_replicas=8))
    return make_view(services=tuple(services))


class TestDecisionSafety:
    @given(starved_cluster())
    def test_hyscale_never_overspends_nodes(self, view):
        """Planned acquisitions + placements never exceed any node's
        availability (the NodeLedger's guarantee)."""
        for policy in (HyScaleCpu(), HyScaleCpuMem()):
            actions = policy.decide(view)
            planned_cpu = {n.name: 0.0 for n in view.nodes}
            planned_mem = {n.name: 0.0 for n in view.nodes}
            by_id = {r.container_id: r for s in view.services for r in s.replicas}
            for action in actions:
                if isinstance(action, VerticalScale):
                    replica = by_id[action.container_id]
                    if action.cpu_request is not None:
                        planned_cpu[replica.node] += action.cpu_request - replica.cpu_request
                    if action.mem_limit is not None:
                        planned_mem[replica.node] += action.mem_limit - replica.mem_limit
                elif isinstance(action, AddReplica) and action.node is not None:
                    planned_cpu[action.node] += action.cpu_request
                    planned_mem[action.node] += action.mem_limit
            for node in view.nodes:
                assert planned_cpu[node.name] <= node.available.cpu + 1e-6
                assert planned_mem[node.name] <= node.available.memory + 1e-6

    @given(starved_cluster())
    def test_hyscale_vertical_targets_exist(self, view):
        """Every vertical action references a replica in the view."""
        ids = {r.container_id for s in view.services for r in s.replicas}
        for action in HyScaleCpuMem().decide(view):
            if isinstance(action, (VerticalScale, RemoveReplica)):
                assert action.container_id in ids

    @given(starved_cluster())
    def test_hyscale_respects_max_replicas(self, view):
        for policy in (HyScaleCpu(), HyScaleCpuMem()):
            actions = policy.decide(view)
            for service in view.services:
                adds = sum(
                    1 for a in actions if isinstance(a, AddReplica) and a.service == service.name
                )
                removals = sum(
                    1
                    for a in actions
                    if isinstance(a, RemoveReplica)
                    and a.container_id in {r.container_id for r in service.replicas}
                )
                assert service.replica_count + adds - removals <= service.max_replicas

    @given(starved_cluster())
    def test_hyscale_spawn_sizes_legal(self, view):
        """Spilled replicas honour the paper's 0.25-CPU spawn floor."""
        for action in HyScaleCpu().decide(view):
            if isinstance(action, AddReplica):
                assert action.cpu_request >= 0.25 - 1e-9
                assert action.mem_limit > 0
