"""Tests for the service registry and load balancer."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.errors import ClusterError
from repro.platform.load_balancer import LoadBalancer, RoutingPolicy
from repro.platform.registry import ServiceRegistry
from repro.sim.clock import SimClock
from repro.workloads.requests import FailureReason, Request

from tests.conftest import make_container


@pytest.fixture
def cluster(overheads):
    cluster = Cluster(overheads)
    cluster.add_node(Node("n0", ResourceVector(8.0, 16384.0, 1000.0), overheads))
    cluster.register_service(MicroserviceSpec(name="svc"))
    return cluster


@pytest.fixture
def registry(cluster):
    return ServiceRegistry(cluster)


def add_replica(cluster, overheads, service="svc", cpu=0.5, boot=0.0):
    container = make_container(service, cpu=cpu, overheads=overheads)
    if boot:
        container = make_container(service, cpu=cpu, boot=boot, overheads=overheads)
    cluster.node("n0").add_container(container, enforce_capacity=False)
    cluster.service(service).track(container)
    return container


def make_lb(registry, overheads, policy=RoutingPolicy.ROUND_ROBIN):
    failures = []
    lb = LoadBalancer(registry, overheads, failure_sink=failures.append, policy=policy)
    return lb, failures


def request(service="svc", arrival=0.0, timeout=30.0):
    return Request(service=service, arrival_time=arrival, cpu_work=1.0, timeout=timeout)


class TestRegistry:
    def test_endpoints_exclude_booting(self, cluster, registry, overheads):
        running = add_replica(cluster, overheads)
        add_replica(cluster, overheads, boot=10.0)
        assert registry.endpoints("svc") == [running]
        assert registry.replica_count("svc") == 1

    def test_unknown_service(self, registry):
        with pytest.raises(ClusterError):
            registry.endpoints("ghost")
        assert not registry.has_service("ghost")

    def test_services_listing(self, registry):
        assert registry.services() == ["svc"]


class TestRouting:
    def test_round_robin_cycles(self, cluster, registry, overheads):
        a = add_replica(cluster, overheads)
        b = add_replica(cluster, overheads)
        lb, _ = make_lb(registry, overheads)
        for _ in range(4):
            lb.submit(request())
        counts = sorted(len(c.inflight) for c in (a, b))
        assert counts == [2, 2]

    def test_least_outstanding_balances(self, cluster, registry, overheads):
        a = add_replica(cluster, overheads)
        b = add_replica(cluster, overheads)
        a.accept(request(), 0.0)
        a.accept(request(), 0.0)
        lb, _ = make_lb(registry, overheads, RoutingPolicy.LEAST_OUTSTANDING)
        lb.submit(request())
        assert len(b.inflight) == 1

    def test_weighted_cpu_prefers_fat_replicas(self, cluster, registry, overheads):
        add_replica(cluster, overheads, cpu=0.2)
        fat = add_replica(cluster, overheads, cpu=3.0)
        lb, _ = make_lb(registry, overheads, RoutingPolicy.WEIGHTED_CPU)
        for _ in range(4):
            lb.submit(request())
        # The 15x bigger replica should take the bulk of the first burst.
        assert len(fat.inflight) >= 3

    def test_unknown_service_rejected(self, registry, overheads):
        lb, _ = make_lb(registry, overheads)
        with pytest.raises(ClusterError):
            lb.submit(request("ghost"))

    def test_routed_counter(self, cluster, registry, overheads):
        add_replica(cluster, overheads)
        lb, _ = make_lb(registry, overheads)
        lb.submit(request())
        assert lb.total_routed == 1


class TestBacklog:
    def test_parks_when_no_replica(self, registry, overheads):
        lb, failures = make_lb(registry, overheads)
        lb.submit(request())
        assert lb.backlog() == 1
        assert failures == []

    def test_backlog_drains_when_replica_appears(self, cluster, registry, overheads):
        lb, _ = make_lb(registry, overheads)
        lb.submit(request())
        replica = add_replica(cluster, overheads)
        clock = SimClock(dt=1.0)
        clock.advance()
        lb.on_step(clock)
        assert lb.backlog() == 0
        assert len(replica.inflight) == 1

    def test_backlog_timeout_is_connection_failure(self, registry, overheads):
        lb, failures = make_lb(registry, overheads)
        lb.submit(request(timeout=2.0))
        clock = SimClock(dt=1.0)
        for _ in range(3):
            clock.advance()
            lb.on_step(clock)
        assert lb.backlog() == 0
        assert len(failures) == 1
        assert failures[0].failure_reason is FailureReason.CONNECTION
        assert lb.total_rejected == 1


class TestDistributionOverhead:
    def test_single_replica_no_overhead(self, registry, paper_overheads):
        lb, _ = make_lb(registry, paper_overheads)
        assert lb.distribution_overhead(1) == pytest.approx(1.0)

    def test_logarithmic_growth(self, registry, paper_overheads):
        import math

        lb, _ = make_lb(registry, paper_overheads)
        o2 = lb.distribution_overhead(2)
        o4 = lb.distribution_overhead(4)
        o8 = lb.distribution_overhead(8)
        o16 = lb.distribution_overhead(16)
        assert 1.0 < o2 < o4 < o8 < o16
        # Log shape: doubling the replicas adds a constant increment.
        assert (o4 - o2) == pytest.approx(o8 - o4, abs=1e-9)
        assert o16 == pytest.approx(1.0 + 0.055 * math.log(16))

    def test_requests_stamped_with_overhead(self, cluster, registry, paper_overheads):
        for _ in range(4):
            add_replica(cluster, paper_overheads)
        lb, _ = make_lb(registry, paper_overheads)
        r = request()
        lb.submit(r)
        assert r.overhead_factor == pytest.approx(lb.distribution_overhead(4))

    def test_invalid_replica_count(self, registry, overheads):
        lb, _ = make_lb(registry, overheads)
        with pytest.raises(ClusterError):
            lb.distribution_overhead(0)
