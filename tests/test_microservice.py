"""Tests for microservice specs and replica sets."""

import pytest

from repro.cluster.microservice import Microservice, MicroserviceSpec
from repro.cluster.resources import ResourceVector
from repro.errors import ClusterError

from tests.conftest import make_container


class TestSpecValidation:
    def test_valid_spec(self):
        spec = MicroserviceSpec(name="svc")
        assert spec.initial_allocation() == ResourceVector(0.5, 512.0, 50.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "s", "cpu_request": 0.0},
            {"name": "s", "mem_limit": 0.0},
            {"name": "s", "net_rate": -1.0},
            {"name": "s", "min_replicas": 0},
            {"name": "s", "min_replicas": 5, "max_replicas": 3},
            {"name": "s", "target_utilization": 0.0},
            {"name": "s", "target_utilization": 1.5},
            {"name": "s", "max_concurrency": 0},
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ClusterError):
            MicroserviceSpec(**kwargs)


class TestReplicaRegistry:
    def test_track_and_forget(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        container = make_container("svc", overheads=overheads)
        service.track(container)
        assert service.replica_count == 1
        assert service.forget(container.container_id) is container
        assert service.replica_count == 0

    def test_track_wrong_service_rejected(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        with pytest.raises(ClusterError):
            service.track(make_container("other", overheads=overheads))

    def test_double_track_rejected(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        container = make_container("svc", overheads=overheads)
        service.track(container)
        with pytest.raises(ClusterError):
            service.track(container)

    def test_forget_unknown_rejected(self):
        service = Microservice(MicroserviceSpec(name="svc"))
        with pytest.raises(ClusterError):
            service.forget("ghost")

    def test_replica_indices_monotonic(self):
        service = Microservice(MicroserviceSpec(name="svc"))
        assert [service.next_replica_index() for _ in range(3)] == [0, 1, 2]

    def test_serving_excludes_booting(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        running = make_container("svc", overheads=overheads)
        booting = make_container("svc", boot=5.0, overheads=overheads)
        service.track(running)
        service.track(booting)
        assert len(service.active_replicas()) == 2
        assert service.serving_replicas() == [running] if running.container_id < booting.container_id else [running]

    def test_stopped_excluded_from_active(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        container = make_container("svc", overheads=overheads)
        service.track(container)
        container.terminate(1.0)
        assert service.replica_count == 0


class TestAggregates:
    def test_totals(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        a = make_container("svc", cpu=0.5, mem=512.0, net=50.0, overheads=overheads)
        b = make_container("svc", cpu=1.5, mem=256.0, net=25.0, overheads=overheads)
        service.track(a)
        service.track(b)
        assert service.total_requested() == ResourceVector(2.0, 768.0, 75.0)

    def test_total_usage_sums_measured(self, overheads):
        service = Microservice(MicroserviceSpec(name="svc"))
        a = make_container("svc", overheads=overheads)
        a.cpu_usage = 0.7
        service.track(a)
        assert service.total_usage().cpu == pytest.approx(0.7)
