"""Tests for the metrics collector, SLA accounting, and run summaries."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.sla import Sla, evaluate_sla
from repro.metrics.summary import RunSummary
from repro.workloads.requests import FailureReason, Request


def finished_request(service="svc", rt=1.0, fail: FailureReason | None = None) -> Request:
    request = Request(service=service, arrival_time=0.0, cpu_work=0.1)
    if fail is None:
        request.complete(rt)
    else:
        request.fail(rt, fail)
    return request


class TestCollector:
    def test_counts_by_outcome(self):
        collector = MetricsCollector()
        collector.record_request(finished_request())
        collector.record_request(finished_request(fail=FailureReason.REMOVAL))
        collector.record_request(finished_request(fail=FailureReason.CONNECTION))
        assert collector.total_requests == 3
        assert collector.total_completed == 1
        assert collector.total_removal_failures == 1
        assert collector.total_connection_failures == 1

    def test_response_times_only_for_completed(self):
        collector = MetricsCollector()
        collector.record_request(finished_request(rt=2.0))
        collector.record_request(finished_request(fail=FailureReason.REMOVAL))
        assert collector.all_response_times() == [2.0]

    def test_unfinished_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(ExperimentError):
            collector.record_request(Request(service="s", arrival_time=0.0))

    def test_per_service_stats(self):
        collector = MetricsCollector()
        collector.record_requests([finished_request("a"), finished_request("b")])
        assert collector.service_names() == ["a", "b"]
        assert collector.service_stats("a").completed == 1
        with pytest.raises(ExperimentError):
            collector.service_stats("ghost")

    def test_scaling_counters(self):
        collector = MetricsCollector()
        collector.record_vertical(3)
        collector.record_scale_up()
        collector.record_scale_down(2)
        collector.record_oom()
        assert collector.vertical_scale_ops == 3
        assert collector.horizontal_scale_ups == 1
        assert collector.horizontal_scale_downs == 2
        assert collector.oom_kills == 1

    def test_timeline_ordering_enforced(self):
        collector = MetricsCollector()
        point = TimelinePoint(5.0, 1, 0, 0, 0, 0, 0, 0)
        collector.sample_timeline(point)
        with pytest.raises(ExperimentError):
            collector.sample_timeline(TimelinePoint(1.0, 1, 0, 0, 0, 0, 0, 0))


class TestSla:
    def test_report_counts(self):
        collector = MetricsCollector()
        collector.record_request(finished_request(rt=1.0))
        collector.record_request(finished_request(rt=10.0))  # slow
        collector.record_request(finished_request(fail=FailureReason.CONNECTION))
        report = evaluate_sla(collector, Sla(response_time_target=5.0))
        assert report.total_requests == 3
        assert report.slow_requests == 1
        assert report.failed_requests == 1
        assert report.violations == 2
        assert report.adherence == pytest.approx(1 / 3)

    def test_availability(self):
        collector = MetricsCollector()
        for _ in range(999):
            collector.record_request(finished_request())
        collector.record_request(finished_request(fail=FailureReason.REMOVAL))
        report = evaluate_sla(collector, Sla(availability_target=0.998))
        assert report.availability == pytest.approx(0.999)
        assert report.availability_met

    def test_penalty(self):
        collector = MetricsCollector()
        collector.record_request(finished_request(fail=FailureReason.REMOVAL))
        report = evaluate_sla(collector, Sla(penalty_per_violation=0.5))
        assert report.total_penalty == 0.5

    def test_empty_run_is_perfect(self):
        report = evaluate_sla(MetricsCollector(), Sla())
        assert report.availability == 1.0
        assert report.adherence == 1.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            Sla(response_time_target=0.0)
        with pytest.raises(ExperimentError):
            Sla(availability_target=0.0)
        with pytest.raises(ExperimentError):
            Sla(penalty_per_violation=-1.0)


class TestRunSummary:
    def make_summary(self) -> RunSummary:
        collector = MetricsCollector()
        for rt in (1.0, 2.0, 3.0):
            collector.record_request(finished_request(rt=rt))
        collector.record_request(finished_request(fail=FailureReason.REMOVAL))
        collector.record_scale_up(5)
        return RunSummary.from_collector(
            collector, algorithm="hybrid", workload="test", duration=100.0
        )

    def test_percentages(self):
        summary = self.make_summary()
        assert summary.total_requests == 4
        assert summary.percent_failed == pytest.approx(25.0)
        assert summary.percent_removal_failures == pytest.approx(25.0)
        assert summary.percent_connection_failures == 0.0
        assert summary.availability == pytest.approx(0.75)

    def test_response_statistics(self):
        summary = self.make_summary()
        assert summary.avg_response_time == pytest.approx(2.0)
        assert summary.p50_response_time == pytest.approx(2.0)

    def test_speedup_over(self):
        fast = self.make_summary()
        collector = MetricsCollector()
        collector.record_request(finished_request(rt=4.0))
        slow = RunSummary.from_collector(collector, algorithm="k8s", workload="test", duration=100.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_as_row_fields(self):
        row = self.make_summary().as_row()
        assert row["algorithm"] == "hybrid"
        assert row["failed_pct"] == 25.0
        assert row["scale_ups"] == 5

    def test_per_service_summaries(self):
        summary = self.make_summary()
        assert len(summary.services) == 1
        assert summary.services[0].percent_failed == pytest.approx(25.0)

    def test_empty_run(self):
        summary = RunSummary.from_collector(
            MetricsCollector(), algorithm="x", workload="w", duration=1.0
        )
        assert summary.percent_failed == 0.0
        assert summary.availability == 1.0


class TestSerialization:
    def make_summary(self) -> RunSummary:
        collector = MetricsCollector()
        collector.record_request(finished_request(rt=1.5))
        collector.record_request(finished_request(fail=FailureReason.REMOVAL))
        collector.sample_timeline(TimelinePoint(0.0, 1, 0.5, 1.0, 100.0, 200.0, 5.0, 2, 1, 3))
        collector.record_scale_up(2)
        return RunSummary.from_collector(collector, algorithm="hybrid", workload="w", duration=60.0)

    def test_json_round_trip(self):
        original = self.make_summary()
        restored = RunSummary.from_json(original.to_json())
        assert restored == original

    def test_dict_round_trip_preserves_nested(self):
        original = self.make_summary()
        restored = RunSummary.from_dict(original.to_dict())
        assert restored.services == original.services
        assert restored.timeline == original.timeline
        assert restored.percent_failed == original.percent_failed

    def test_json_is_plain_text(self):
        import json

        payload = json.loads(self.make_summary().to_json())
        assert payload["algorithm"] == "hybrid"
        assert isinstance(payload["timeline"], list)


class TestServicePercentiles:
    def make_summary(self) -> RunSummary:
        collector = MetricsCollector()
        for rt in (1.0, 2.0, 3.0, 4.0, 5.0):
            collector.record_request(finished_request("svc", rt=rt))
        return RunSummary.from_collector(collector, algorithm="a", workload="w", duration=10.0)

    def test_service_summary_carries_p50_and_p99(self):
        (svc,) = self.make_summary().services
        assert svc.p50_response_time == pytest.approx(3.0)
        assert svc.p95_response_time >= svc.p50_response_time
        assert svc.p99_response_time >= svc.p95_response_time

    def test_from_dict_accepts_archived_summaries_without_percentiles(self):
        # Summaries serialized before p50/p99 existed must still load.
        payload = self.make_summary().to_dict()
        for service in payload["services"]:
            del service["p50_response_time"]
            del service["p99_response_time"]
        restored = RunSummary.from_dict(payload)
        (svc,) = restored.services
        assert svc.p50_response_time == 0.0
        assert svc.p99_response_time == 0.0


class TestSlaNoTraffic:
    def test_zero_traffic_run_is_flagged(self):
        report = evaluate_sla(MetricsCollector(), Sla())
        assert report.no_traffic is True
        # Still "perfect" numerically — the flag is what distinguishes
        # "met the SLA" from "nothing happened".
        assert report.availability == 1.0

    def test_traffic_clears_the_flag(self):
        collector = MetricsCollector()
        collector.record_request(finished_request())
        report = evaluate_sla(collector, Sla())
        assert report.no_traffic is False
