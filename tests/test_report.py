"""Tests for result-table formatting."""

from repro.experiments.report import (
    comparison_table,
    format_table,
    memory_table,
    scaling_curve_table,
    trace_series_table,
)
from repro.experiments.section3 import MemoryScenario, ScalingPoint
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import RunSummary
from repro.workloads.requests import Request


def simple_summary(name: str) -> RunSummary:
    collector = MetricsCollector()
    request = Request(service="s", arrival_time=0.0, cpu_work=0.1)
    request.complete(1.5)
    collector.record_request(request)
    return RunSummary.from_collector(collector, algorithm=name, workload="w", duration=10.0)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long-header"], [["xxxx", "1"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert len(set(len(l.rstrip()) for l in lines[:2])) >= 1
        assert lines[1].startswith("-")

    def test_empty_rows(self):
        text = format_table(["h"], [])
        assert "h" in text


class TestTables:
    def test_comparison_table_rows_sorted(self):
        text = comparison_table({"b": simple_summary("b"), "a": simple_summary("a")}, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        a_row = next(i for i, l in enumerate(lines) if l.startswith("a"))
        b_row = next(i for i, l in enumerate(lines) if l.startswith("b"))
        assert a_row < b_row

    def test_scaling_curve_table(self):
        points = [ScalingPoint(1, 10.0, 640, 0), ScalingPoint(2, 12.0, 640, 0)]
        text = scaling_curve_table(points, title="Figure 2")
        assert "Figure 2" in text
        assert "10.00" in text and "12.00" in text

    def test_memory_table_inf_rendered(self):
        scenarios = [MemoryScenario("starved", 1, 128.0, float("inf"), True)]
        text = memory_table(scenarios)
        assert "inf" in text and "yes" in text

    def test_trace_series_stride(self):
        times = [0.0, 30.0, 60.0, 90.0]
        cpu = [10.0, 20.0, 30.0, 40.0]
        mem = [0.5, 0.5, 0.5, 0.5]
        text = trace_series_table(times, cpu, mem, stride=2)
        assert "0" in text and "60" in text
        assert "30.00" in text  # cpu at t=60
        assert len(text.splitlines()) == 2 + 2  # header + divider + 2 rows
