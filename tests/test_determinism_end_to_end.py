"""Determinism regression: one ``SimulationConfig`` fully determines a run.

This is the backstop behind the DET lint rules: even if a nondeterminism
escape slips past static analysis, running the same configuration twice and
comparing bit-for-bit will fail loudly.  Everything is rebuilt from scratch
for each run — shared state between runs would mask the very bugs this test
exists to catch.
"""

from repro.cluster import MicroserviceSpec, RandomPlacement
from repro.config import ClusterConfig, SimulationConfig
from repro.core.hyscale import (
    _by_container_id,
    _by_cpu_utilization,
    _by_cpu_utilization_desc,
)
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.registry import registered_policies
from repro.experiments.configs import cpu_bound, make_policy
from repro.experiments.runner import Simulation
from repro.metrics.sla import Sla
from repro.obs import NULL_TRACER, DecisionTracer, Tracer, spans_to_jsonl
from repro.sanitizer import NULL_SANITIZER, Sanitizer, SimSanitizer
from repro.sim.rng import RngStreams
from repro.telemetry import (
    NULL_REGISTRY,
    MetricRegistry,
    SloTracker,
    render_openmetrics,
    snapshot_to_jsonl,
)
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad
from repro.workloads.bitbrains import generate_bitbrains_trace
from repro.workloads.generator import ClientLoadGenerator


class _FakeReplica:
    """Minimal stand-in with the two fields the sort keys read."""

    def __init__(self, container_id: str, cpu_utilization: float):
        self.container_id = container_id
        self.cpu_utilization = cpu_utilization


def _fresh_simulation(
    seed: int,
    *,
    random_placement: bool = False,
    tracer: Tracer = NULL_TRACER,
    telemetry: MetricRegistry = NULL_REGISTRY,
    slo: SloTracker | None = None,
    sanitizer: Sanitizer = NULL_SANITIZER,
    backend: str = "object",
) -> Simulation:
    """Build a small but busy experiment entirely from ``seed``."""
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=seed)
    specs = [
        MicroserviceSpec(
            name=f"svc-{i}", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=8
        )
        for i in range(2)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
        )
        for spec in specs
    ]
    placement = RandomPlacement(RngStreams(config.seed)) if random_placement else None
    return Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy=HyScaleCpuMem(),
        workload_label="determinism-probe",
        placement=placement,
        tracer=tracer,
        telemetry=telemetry,
        slo=slo,
        sanitizer=sanitizer,
        backend=backend,
    )


def _run_once(
    seed: int, *, random_placement: bool = False, backend: str = "object"
) -> tuple[dict, list, list]:
    simulation = _fresh_simulation(seed, random_placement=random_placement, backend=backend)
    summary = simulation.run(90.0)
    events = list(simulation.collector.events.events())
    timeline = list(simulation.collector.timeline)
    return summary.to_dict(), events, timeline


class TestEndToEndDeterminism:
    def test_same_seed_is_bit_identical(self):
        first_summary, first_events, first_timeline = _run_once(seed=7)
        second_summary, second_events, second_timeline = _run_once(seed=7)
        assert first_summary == second_summary
        assert first_events == second_events
        assert first_timeline == second_timeline
        # The run actually did something worth comparing.
        assert first_summary["total_requests"] > 100
        assert first_events, "expected scaling activity in the probe run"

    def test_same_seed_with_random_placement_is_bit_identical(self):
        first = _run_once(seed=11, random_placement=True)
        second = _run_once(seed=11, random_placement=True)
        assert first == second

    def test_different_seed_changes_the_run(self):
        baseline = _run_once(seed=7)
        shifted = _run_once(seed=8)
        assert baseline != shifted

    def test_array_backend_is_bit_identical_to_object(self):
        """Engine backends extend the determinism contract sideways: the
        config determines the run regardless of which engine steps it."""
        reference = _run_once(seed=7)
        candidate = _run_once(seed=7, backend="array")
        assert candidate == reference

    def test_array_backend_same_seed_is_bit_identical(self):
        first = _run_once(seed=11, backend="array")
        second = _run_once(seed=11, backend="array")
        assert first == second
        assert first[0]["total_requests"] > 100

    def test_experiment_factory_runs_identically(self):
        # Through the public factory + policy registry, as the CLI does.
        spec_a = cpu_bound("low", seed=3)
        spec_b = cpu_bound("low", seed=3)
        sim_a = Simulation.build(
            config=spec_a.config,
            specs=list(spec_a.specs),
            loads=list(spec_a.loads),
            policy=make_policy("hybrid", spec_a.config),
            workload_label=spec_a.label,
        )
        sim_b = Simulation.build(
            config=spec_b.config,
            specs=list(spec_b.specs),
            loads=list(spec_b.loads),
            policy=make_policy("hybrid", spec_b.config),
            workload_label=spec_b.label,
        )
        summary_a = sim_a.run(60.0).to_dict()
        summary_b = sim_b.run(60.0).to_dict()
        assert summary_a == summary_b
        assert list(sim_a.collector.events.events()) == list(sim_b.collector.events.events())

    def test_decision_trace_is_byte_identical_across_same_seed_runs(self):
        """The JSONL trace encoding is part of the determinism contract:
        same seed, same bytes — no wall-clock, ids, or dict-order leaks."""

        def trace_once() -> str:
            tracer = DecisionTracer()
            simulation = _fresh_simulation(seed=7, tracer=tracer)
            simulation.run(90.0)
            return spans_to_jsonl(tracer.spans())

        first = trace_once()
        second = trace_once()
        assert first, "expected a non-empty trace"
        assert first == second

    def test_tracing_does_not_perturb_the_run(self):
        """Recording decision evidence is observation only: a traced run
        and an untraced run of the same seed produce identical results."""
        untraced = _run_once(seed=7)
        tracer = DecisionTracer()
        simulation = _fresh_simulation(seed=7, tracer=tracer)
        summary = simulation.run(90.0)
        traced = (
            summary.to_dict(),
            list(simulation.collector.events.events()),
            list(simulation.collector.timeline),
        )
        assert untraced == traced

    def test_telemetry_exports_are_byte_identical_across_same_seed_runs(self):
        """The telemetry exporters extend the byte-determinism contract:
        same seed, same OpenMetrics document, same JSONL snapshot."""

        def stream_once() -> tuple[str, str]:
            registry = MetricRegistry()
            slo = SloTracker(Sla(response_time_target=5.0, availability_target=0.95))
            simulation = _fresh_simulation(seed=7, telemetry=registry, slo=slo)
            simulation.run(90.0)
            now = simulation.engine.clock.now
            return (
                render_openmetrics(registry),
                snapshot_to_jsonl(registry, now=now, alerts=slo.alerts()),
            )

        first_om, first_snap = stream_once()
        second_om, second_snap = stream_once()
        assert "sim_steps_total" in first_om, "expected an instrumented run"
        assert first_om == second_om
        assert first_snap == second_snap

    def test_telemetry_does_not_perturb_the_run(self):
        """Instrumentation is observation only: a run with a recording
        registry produces bit-identical results to a NULL_REGISTRY run."""
        bare = _run_once(seed=7)
        registry = MetricRegistry()
        slo = SloTracker(Sla(response_time_target=5.0, availability_target=0.95))
        simulation = _fresh_simulation(seed=7, telemetry=registry, slo=slo)
        summary = simulation.run(90.0)
        instrumented = (
            summary.to_dict(),
            list(simulation.collector.events.events()),
            list(simulation.collector.timeline),
        )
        assert bare == instrumented

    def test_full_sampling_is_byte_identical_for_every_policy_at_fleet_scale(self):
        """``sampling="full"`` with an unsharded recording registry must be
        byte-identical to a default build that never passed the keyword —
        summaries, scaling events, and both export formats — for every
        registered scaling policy at 24 nodes."""

        def fleet_run(policy_name: str, sampling: str | None) -> tuple:
            config = SimulationConfig(cluster=ClusterConfig(worker_nodes=24), seed=7)
            specs = [
                MicroserviceSpec(
                    name=f"svc-{i}",
                    cpu_request=0.5,
                    mem_limit=512.0,
                    net_rate=50.0,
                    max_replicas=8,
                )
                for i in range(2)
            ]
            loads = [
                ServiceLoad(
                    service=spec.name,
                    profile=CPU_BOUND,
                    pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
                )
                for spec in specs
            ]
            registry = MetricRegistry()
            simulation = Simulation.build(
                config=config,
                specs=specs,
                loads=loads,
                policy=policy_name,
                workload_label="sampling-pin",
                telemetry=registry,
                **({} if sampling is None else {"sampling": sampling}),
            )
            summary = simulation.run(40.0)
            now = simulation.engine.clock.now
            return (
                summary.to_dict(),
                list(simulation.collector.events.events()),
                render_openmetrics(registry),
                snapshot_to_jsonl(registry, now=now),
            )

        policies = registered_policies()
        assert len(policies) == 9  # the paper's five plus the extensions
        for name in policies:
            assert fleet_run(name, "full") == fleet_run(name, None), name

    def test_null_sanitizer_run_is_bit_identical_to_the_bare_run(self, request):
        """``NULL_SANITIZER`` is the default: passing it explicitly keeps
        the exact unsanitized hot loop (``engine.sanitizer is None``), so
        the run is the bare run, bit for bit."""
        bare = _run_once(seed=7)
        simulation = _fresh_simulation(seed=7, sanitizer=NULL_SANITIZER)
        if not request.config.getoption("--simsan"):
            # The --simsan lane swaps a recorder in for the null sanitizer;
            # the bit-identity below must hold either way.
            assert simulation.engine.sanitizer is None
        summary = simulation.run(90.0)
        nulled = (
            summary.to_dict(),
            list(simulation.collector.events.events()),
            list(simulation.collector.timeline),
        )
        assert bare == nulled

    def test_sanitizer_does_not_perturb_the_run(self):
        """SimSan is observation only: a sanitized run produces bit-identical
        results to the bare run — and a healthy run has no violations."""
        bare = _run_once(seed=7)
        sanitizer = SimSanitizer()
        simulation = _fresh_simulation(seed=7, sanitizer=sanitizer)
        summary = simulation.run(90.0)
        sanitized = (
            summary.to_dict(),
            list(simulation.collector.events.events()),
            list(simulation.collector.timeline),
        )
        assert bare == sanitized
        assert sanitizer.violations() == ()
        assert sanitizer.steps_checked == simulation.engine.clock.step

    def test_hot_path_fixes_are_behaviourally_inert(self):
        """The FlowLint HOT fixes (prefetched arrival streams, hoisted
        sort keys, registration-time profiler labels) must be invisible:
        each optimized formulation is pinned to the per-step formulation
        it replaced, and the bit-identity tests above pin the summaries
        themselves."""
        # Prefetched arrival streams ARE the registry's cached streams, so
        # the generator draws the identical sequence a per-step
        # ``rng.stream(f"arrivals/{name}")`` lookup would have drawn.
        streams = RngStreams(7)
        loads = [
            ServiceLoad(
                service=f"svc-{i}",
                profile=CPU_BOUND,
                pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
            )
            for i in range(2)
        ]
        generator = ClientLoadGenerator(loads, streams, sink=lambda request: None)
        for load, stream in generator._streams:
            assert stream is streams.stream(f"arrivals/{load.service}")

        # Module-level sort keys order exactly as the lambdas they replaced.
        replicas = [_FakeReplica("c3", 0.2), _FakeReplica("c1", 0.9), _FakeReplica("c2", 0.5)]
        assert sorted(replicas, key=_by_container_id, reverse=True) == sorted(
            replicas, key=lambda r: r.container_id, reverse=True
        )
        assert sorted(replicas, key=_by_cpu_utilization) == sorted(
            replicas, key=lambda r: r.cpu_utilization
        )
        assert sorted(replicas, key=_by_cpu_utilization_desc) == sorted(
            replicas, key=lambda r: -r.cpu_utilization
        )

        # Profiler phase labels minted at registration equal the strings
        # the profiled loop used to format every step.
        simulation = _fresh_simulation(seed=7)
        engine = simulation.engine
        assert engine._actor_labels == [f"actor:{name}" for name, _ in engine._actors]

    def test_detflow_pass_is_behaviourally_inert(self):
        """DetFlow (DET101–104 / CON001–003) found no real violations to
        fix in ``src/repro`` — the tree analyzes clean with zero tainted
        paths — so the pin here is the analysis itself: running the full
        static pass between two same-seed runs must not perturb a single
        byte of the simulation, and the registries the contract checker
        audits must enumerate identically before and after."""
        from repro.devtools.flow import analyze_paths
        from repro.engine_core.backend import registered_backends
        from repro.telemetry.sampling import registered_sampling_policies
        from tests.test_devtools_flow import REPO_ROOT

        before = _run_once(seed=7)
        names_before = (
            registered_policies(),
            registered_backends(),
            registered_sampling_policies(),
        )
        analysis = analyze_paths(["src/repro"], root=REPO_ROOT)
        assert analysis.report.taint is not None
        assert analysis.report.taint.paths == ()
        assert analysis.report.contracts == ()
        after = _run_once(seed=7)
        assert after == before
        assert (
            registered_policies(),
            registered_backends(),
            registered_sampling_policies(),
        ) == names_before

    def test_bitbrains_trace_is_a_pure_function_of_the_seed(self):
        trace_a = generate_bitbrains_trace(n_vms=8, duration=300.0, interval=30.0, seed=5)
        trace_b = generate_bitbrains_trace(n_vms=8, duration=300.0, interval=30.0, seed=5)
        for vm_a, vm_b in zip(trace_a.vms, trace_b.vms):
            assert (vm_a.cpu_pct == vm_b.cpu_pct).all()
            assert (vm_a.mem_frac == vm_b.mem_frac).all()

    def test_bitbrains_trace_stream_is_isolated_from_other_consumers(self):
        # Drawing from other named streams of the same root seed must not
        # perturb the trace (the RngStreams independence property, end to
        # end through the workload layer).
        streams = RngStreams(5)
        streams.stream("some/other/consumer").uniform(size=100)
        via_factory = generate_bitbrains_trace(n_vms=4, duration=120.0, interval=30.0, seed=5)
        via_stream = generate_bitbrains_trace(
            n_vms=4, duration=120.0, interval=30.0, rng=streams.stream("workloads/bitbrains")
        )
        for vm_a, vm_b in zip(via_factory.vms, via_stream.vms):
            assert (vm_a.cpu_pct == vm_b.cpu_pct).all()
