"""PhaseProfiler tests: accumulation with an injected fake clock, the
report/render surfaces, and the engine's per-actor attribution."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import PhaseProfiler
from repro.sim.engine import Engine


class FakeClock:
    """Deterministic monotonic counter standing in for the host clock."""

    def __init__(self, tick: float = 0.001):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


class TestAccumulation:
    def test_observe_accumulates_seconds_and_calls(self):
        profiler = PhaseProfiler(timer=FakeClock())
        profiler.observe("cluster", 0.5)
        profiler.observe("cluster", 0.25)
        profiler.observe("lb", 0.1)
        assert profiler.seconds("cluster") == pytest.approx(0.75)
        assert profiler.calls("cluster") == 2
        assert profiler.total_seconds == pytest.approx(0.85)
        assert profiler.phase_names() == ("cluster", "lb")

    def test_negative_duration_raises(self):
        with pytest.raises(ObservabilityError):
            PhaseProfiler().observe("x", -1.0)

    def test_counters(self):
        profiler = PhaseProfiler()
        profiler.increment("metrics.samples")
        profiler.increment("metrics.samples", 4)
        assert profiler.counters() == {"metrics.samples": 5}

    def test_unseen_phase_reads_zero(self):
        profiler = PhaseProfiler()
        assert profiler.seconds("ghost") == 0.0
        assert profiler.calls("ghost") == 0


class TestReporting:
    def test_report_shares_sum_to_one(self):
        profiler = PhaseProfiler()
        profiler.observe("a", 3.0)
        profiler.observe("b", 1.0)
        profiler.count_step()
        report = profiler.report()
        assert report["steps"] == 1
        assert report["total_seconds"] == pytest.approx(4.0)
        phases = report["phases"]
        assert phases["a"]["share"] == pytest.approx(0.75)
        assert sum(p["share"] for p in phases.values()) == pytest.approx(1.0)

    def test_to_json_parses(self):
        profiler = PhaseProfiler()
        profiler.observe("a", 1.0)
        payload = json.loads(profiler.to_json())
        assert set(payload) == {"steps", "total_seconds", "phases", "counters"}

    def test_render_empty(self):
        assert PhaseProfiler().render() == "(no phases profiled)"

    def test_render_table(self):
        profiler = PhaseProfiler()
        profiler.observe("actor:cluster", 0.2)
        profiler.count_step()
        text = profiler.render()
        assert "actor:cluster" in text
        assert "steps=1" in text


class _Sleeper:
    """Actor that consumes a fixed number of fake-clock ticks per step."""

    def __init__(self, clock: FakeClock, ticks: int):
        self._clock = clock
        self._ticks = ticks

    def on_step(self, clock) -> None:
        for _ in range(self._ticks):
            self._clock()


class TestEngineAttribution:
    def test_engine_times_each_actor(self):
        fake = FakeClock(tick=0.001)
        profiler = PhaseProfiler(timer=fake)
        engine = Engine(dt=0.5, profiler=profiler)
        engine.add_actor("fast", _Sleeper(fake, 1))
        engine.add_actor("slow", _Sleeper(fake, 9))
        engine.run_steps(4)
        assert profiler.steps == 4
        assert profiler.calls("actor:fast") == 4
        assert profiler.calls("actor:slow") == 4
        assert profiler.calls("events") == 4
        # The slow actor accumulates ~9x the fast one's wall time (each
        # bracketing timer() call adds one tick of its own).
        assert profiler.seconds("actor:slow") > profiler.seconds("actor:fast") * 4

    def test_engine_without_profiler_has_none(self):
        engine = Engine(dt=0.5)
        assert engine.profiler is None

    def test_profiling_does_not_change_results(self):
        """Same seed with and without a profiler: identical outputs."""
        from tests.test_determinism_end_to_end import _run_once
        from tests.test_determinism_end_to_end import _fresh_simulation

        untraced = _run_once(seed=7)
        simulation = _fresh_simulation(seed=7)
        simulation.engine.profiler = PhaseProfiler()
        summary = simulation.run(90.0)
        profiled = (
            summary.to_dict(),
            list(simulation.collector.events.events()),
            list(simulation.collector.timeline),
        )
        assert untraced == profiled
        assert simulation.engine.profiler.steps > 0
