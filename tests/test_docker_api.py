"""Tests for the cluster-wide Docker client facade."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.dockersim.api import DockerClient
from repro.errors import ClusterError, ContainerNotFound
from repro.workloads.requests import Request


@pytest.fixture
def cluster(overheads):
    cluster = Cluster(overheads)
    for i in range(2):
        cluster.add_node(Node(f"n{i}", ResourceVector(4.0, 8192.0, 1000.0), overheads))
    cluster.register_service(MicroserviceSpec(name="svc", max_concurrency=8))
    return cluster


@pytest.fixture
def client(cluster):
    return DockerClient(cluster)


class TestRunReplica:
    def test_tracks_replica_and_location(self, client, cluster):
        container = client.run_replica(
            "svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, now=0.0
        )
        assert container in cluster.service("svc").active_replicas()
        assert client.node_name_of(container.container_id) == "n0"
        assert container.max_concurrency == 8  # from the spec

    def test_replica_indices_increment(self, client):
        a = client.run_replica("svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)
        b = client.run_replica("svc", "n1", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)
        assert a.replica_index == 0 and b.replica_index == 1

    def test_default_boot_delay_from_overheads(self, cluster, client):
        container = client.run_replica(
            "svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0
        )
        # Test overheads use boot_delay = 0 -> serving immediately.
        assert container.is_serving

    def test_unknown_node_rejected(self, client):
        with pytest.raises(ClusterError):
            client.run_replica("svc", "ghost", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)

    def test_unknown_service_rejected(self, client):
        with pytest.raises(ClusterError):
            client.run_replica("ghost", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0)


class TestRouting:
    def test_update_routes_to_owning_daemon(self, client):
        container = client.run_replica(
            "svc", "n1", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0
        )
        client.update(container.container_id, cpu_request=1.5)
        assert container.cpu_request == 1.5

    def test_stats_routed(self, client):
        container = client.run_replica(
            "svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0
        )
        assert client.stats(container.container_id, 1.0).cpu_request == 0.5

    def test_unknown_container_rejected(self, client):
        with pytest.raises(ContainerNotFound):
            client.node_name_of("ghost")


class TestRemoveAndReap:
    def test_remove_deregisters(self, client, cluster):
        container = client.run_replica(
            "svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0
        )
        client.remove_replica(container.container_id, 1.0)
        assert cluster.service("svc").replica_count == 0
        with pytest.raises(ContainerNotFound):
            client.node_name_of(container.container_id)

    def test_reap_deregisters_oom_kills(self, client, cluster):
        container = client.run_replica(
            "svc", "n0", cpu_request=0.5, mem_limit=110.0, net_rate=0.0, now=0.0
        )
        for _ in range(8):
            container.accept(
                Request(service="svc", arrival_time=0.0, cpu_work=1000.0, mem_footprint=200.0), 0.0
            )
        cluster.node("n0").step(1.0, 1.0)
        corpses = client.reap(1.0)
        assert [c.container_id for c in corpses] == [container.container_id]
        assert cluster.service("svc").replica_count == 0


class TestNodeLifecycle:
    def test_track_new_node(self, client, cluster, overheads):
        cluster.add_node(Node("n9", ResourceVector(4.0, 8192.0, 1000.0), overheads))
        client.track_node("n9")
        container = client.run_replica(
            "svc", "n9", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0
        )
        assert client.node_name_of(container.container_id) == "n9"

    def test_double_track_rejected(self, client):
        with pytest.raises(ClusterError):
            client.track_node("n0")

    def test_untrack_clears_locations(self, client):
        container = client.run_replica(
            "svc", "n0", cpu_request=0.5, mem_limit=512.0, net_rate=0.0, now=0.0
        )
        client.untrack_node("n0")
        with pytest.raises(ContainerNotFound):
            client.node_name_of(container.container_id)
