"""Application graphs: validation, degeneracy, back-pressure, registries.

Four contracts from the ApplicationSpec/ServiceGraph redesign are pinned
here:

1. **Validation** — malformed graphs (cycles, unknown endpoints, bad
   fan-out, duplicate edges/tiers) fail loudly at construction, and the
   topological order is pinned regardless of listing order.
2. **Degeneracy** — a one-service, zero-edge application behaves
   byte-identically to running the same spec as a plain fleet; the app
   block is purely additive.
3. **Back-pressure** — capping a downstream tier's replicas degrades the
   *ingress* tier's end-to-end SLO; the damage surfaces where users feel
   it, monotonically in the cap.
4. **Backend parity** — a three-tier graph run summarizes identically on
   the object and array engines (routing and back-pressure live in
   shared code).

Plus the registry satellite: workload/app/profile/routing names resolve
through one instance-held table each, with the old spellings preserved.
"""

import pytest

from repro.cli import build_parser
from repro.config import ClusterConfig, SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.errors import ExperimentError, WorkloadError
from repro.experiments.configs import WORKLOAD_FACTORIES, three_tier
from repro.experiments.runner import Simulation
from repro.experiments.spec import RunSpec
from repro.metrics.sla import Sla, evaluate_sla
from repro.platform.load_balancer import RoutingPolicy
from repro.platform.routing import (
    DEFAULT_ROUTING,
    register_routing,
    registered_routings,
    resolve_routing,
)
from repro.workloads import CPU_BOUND, LowBurstLoad, ServiceLoad
from repro.workloads.graph import (
    GRAPH_SCHEMA,
    ApplicationSpec,
    CallEdge,
    ServiceGraph,
    ServiceSpec,
    three_tier_app,
    three_tier_graph,
)
from repro.workloads.registry import (
    register_workload,
    registered_apps,
    registered_workloads,
    resolve_app,
    resolve_profile,
    resolve_workload,
)


def _tiers(*names: str) -> tuple[ServiceSpec, ...]:
    return tuple(ServiceSpec(name=name) for name in names)


# ----------------------------------------------------------------------
# 1. Graph validation
# ----------------------------------------------------------------------
class TestGraphValidation:
    def test_cycle_is_rejected_naming_participants(self):
        with pytest.raises(WorkloadError, match="cycle through"):
            ServiceGraph(
                services=_tiers("a", "b", "c"),
                edges=(
                    CallEdge(caller="a", callee="b"),
                    CallEdge(caller="b", callee="c"),
                    CallEdge(caller="c", callee="a"),
                ),
            )

    def test_unknown_edge_endpoint(self):
        with pytest.raises(WorkloadError, match="unknown service 'ghost'"):
            ServiceGraph(
                services=_tiers("a"),
                edges=(CallEdge(caller="a", callee="ghost"),),
            )

    def test_duplicate_edge(self):
        with pytest.raises(WorkloadError, match="duplicate edge"):
            ServiceGraph(
                services=_tiers("a", "b"),
                edges=(
                    CallEdge(caller="a", callee="b", calls=1),
                    CallEdge(caller="a", callee="b", calls=2),
                ),
            )

    def test_self_edge(self):
        with pytest.raises(WorkloadError, match="may not call itself"):
            CallEdge(caller="a", callee="a")

    def test_fan_out_must_be_a_real_int(self):
        with pytest.raises(WorkloadError, match="must be an int"):
            CallEdge(caller="a", callee="b", calls=True)
        with pytest.raises(WorkloadError, match=">= 0"):
            CallEdge(caller="a", callee="b", calls=-1)

    def test_duplicate_service_names(self):
        with pytest.raises(WorkloadError, match="duplicate service names"):
            ServiceGraph(services=_tiers("a", "a"))

    def test_empty_graph(self):
        with pytest.raises(WorkloadError, match="at least one service"):
            ServiceGraph(services=())

    def test_topological_order_is_pinned_regardless_of_listing(self):
        edges = (
            CallEdge(caller="front", callee="api"),
            CallEdge(caller="api", callee="db"),
        )
        forward = ServiceGraph(services=_tiers("front", "api", "db"), edges=edges)
        reversed_listing = ServiceGraph(
            services=_tiers("db", "api", "front"), edges=tuple(reversed(edges))
        )
        assert forward.topological_order() == ("front", "api", "db")
        assert forward.topological_order() == reversed_listing.topological_order()

    def test_ingress_defaults_to_roots(self):
        app = three_tier_app()
        assert app.ingress == ("frontend",)
        assert app.graph.roots() == ("frontend",)

    def test_ingress_must_be_in_graph(self):
        with pytest.raises(WorkloadError, match="ingress tier 'ghost'"):
            ApplicationSpec(name="x", graph=three_tier_graph(), ingress=("ghost",))

    def test_codec_round_trip_and_schema(self):
        app = three_tier_app(db_max_replicas=4)
        decoded = ApplicationSpec.from_dict(app.to_dict())
        assert decoded == app
        assert decoded.canonical_json() == app.canonical_json()
        assert GRAPH_SCHEMA in app.canonical_json()
        with pytest.raises(WorkloadError, match="unsupported application schema"):
            ApplicationSpec.from_dict({**app.to_dict(), "schema": "repro.app/99"})

    def test_run_spec_codec_carries_the_app(self):
        spec = three_tier().to_run_spec("hybrid")
        assert spec.app is not None
        assert GRAPH_SCHEMA in spec.canonical_json()
        decoded = RunSpec.from_dict(spec.to_dict())
        assert decoded.canonical_json() == spec.canonical_json()
        assert decoded.app == spec.app


# ----------------------------------------------------------------------
# Shared run plumbing
# ----------------------------------------------------------------------
def _app_simulation(db_max_replicas: int, *, backend: str = "object") -> Simulation:
    return Simulation.build(
        config=SimulationConfig(cluster=ClusterConfig(worker_nodes=8), seed=7),
        loads=[
            ServiceLoad(
                service="frontend",
                profile=CPU_BOUND,
                pattern=LowBurstLoad(base=8.0, amplitude=0.3, period=120.0),
            )
        ],
        policy="hybrid",
        workload_label="app-graph-test",
        app=three_tier_app(db_max_replicas=db_max_replicas),
        backend=backend,
    )


# ----------------------------------------------------------------------
# 2. One-node degeneracy: graph run == plain-fleet run
# ----------------------------------------------------------------------
class TestSingleServiceDegeneracy:
    DURATION = 90.0

    def _fleet_pieces(self):
        config = SimulationConfig(cluster=ClusterConfig(worker_nodes=8), seed=3)
        spec = MicroserviceSpec(
            name="web", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=8
        )
        loads = [
            ServiceLoad(
                service="web",
                profile=CPU_BOUND,
                pattern=LowBurstLoad(base=6.0, amplitude=0.3, period=60.0),
            )
        ]
        return config, spec, loads

    def test_one_node_graph_matches_plain_fleet_byte_for_byte(self):
        config, spec, loads = self._fleet_pieces()
        plain = Simulation.build(
            config=config, specs=[spec], loads=loads, policy="hybrid",
            workload_label="degenerate",
        ).run(self.DURATION)
        wrapped = Simulation.build(
            config=config, loads=loads, policy="hybrid",
            workload_label="degenerate",
            app=ApplicationSpec.single_service(spec),
        ).run(self.DURATION)

        plain_dict = plain.to_dict()
        wrapped_dict = wrapped.to_dict()
        app_block = wrapped_dict.pop("app")
        # Everything the plain fleet reports is reproduced exactly; the
        # app block is purely additive.
        assert "app" not in plain_dict
        assert wrapped_dict == plain_dict
        # And the additive block is the degenerate one: every request is
        # ingress, none are internal.
        assert app_block["internal_requests"] == 0
        assert app_block["ingress_requests"] == plain.total_requests

    def test_user_view_collapses_to_run_totals(self):
        config, spec, loads = self._fleet_pieces()
        plain = Simulation.build(
            config=config, specs=[spec], loads=loads, policy="hybrid",
            workload_label="degenerate",
        ).run(self.DURATION)
        # No app: the user_* accessors read the run totals directly.
        assert plain.user_requests == plain.total_requests
        assert plain.user_avg_response_time == plain.avg_response_time
        assert plain.user_p99_response_time == plain.p99_response_time


# ----------------------------------------------------------------------
# 3. Back-pressure: a capped downstream tier degrades the ingress SLO
# ----------------------------------------------------------------------
class TestBackPressure:
    DURATION = 120.0
    SLA = Sla(response_time_target=8.0)

    def _violation_pct(self, db_max_replicas: int) -> float:
        simulation = _app_simulation(db_max_replicas)
        simulation.run(self.DURATION)
        report = evaluate_sla(simulation.collector, self.SLA)
        return 100.0 * (1.0 - report.adherence)

    def test_capping_db_raises_ingress_slo_violations(self):
        healthy = self._violation_pct(16)
        capped = self._violation_pct(1)
        # The bottleneck is two hops downstream of the only tier users
        # talk to; its saturation must surface there, and badly.
        assert capped > healthy
        assert capped - healthy > 10.0

    def test_internal_traffic_exists_and_is_separated(self):
        simulation = _app_simulation(16)
        summary = simulation.run(self.DURATION)
        assert summary.app is not None
        # frontend -> 1x api -> 2x db: three internal calls per user hit.
        assert summary.app.internal_requests > summary.app.ingress_requests
        # The user-facing accessors read the ingress block, never the
        # internal fan-out (no double-counting in reports).
        assert summary.user_requests == summary.app.ingress_requests
        assert summary.total_requests > summary.app.ingress_requests


# ----------------------------------------------------------------------
# 4. Three-tier object/array backend parity
# ----------------------------------------------------------------------
class TestThreeTierBackendParity:
    def test_summaries_are_identical_across_engines(self):
        reference = _app_simulation(2, backend="object").run(60.0)
        candidate = _app_simulation(2, backend="array").run(60.0)
        assert reference.to_dict() == candidate.to_dict()


# ----------------------------------------------------------------------
# Registries: workloads, apps, profiles, routing
# ----------------------------------------------------------------------
class TestWorkloadRegistry:
    def test_builtins_are_registered(self):
        assert set(registered_workloads()) >= {
            "cpu", "memory", "mixed", "network", "disk", "bitbrains",
        }
        assert "three-tier" in registered_apps()

    def test_unknown_names_fail_with_the_known_set(self):
        with pytest.raises(WorkloadError, match="unknown workload 'gpu'"):
            resolve_workload("gpu")
        with pytest.raises(WorkloadError, match="unknown application"):
            resolve_app("nope")
        with pytest.raises(WorkloadError, match="unknown profile"):
            resolve_profile("nope")

    def test_old_spelling_is_a_view_over_the_registry(self):
        assert set(WORKLOAD_FACTORIES) == set(registered_workloads())
        for name, entry in WORKLOAD_FACTORIES.items():
            assert entry == resolve_workload(name)

    def test_double_registration_needs_replace(self):
        factory, takes_burst = resolve_workload("cpu")
        with pytest.raises(WorkloadError, match="already registered"):
            register_workload("cpu", factory, takes_burst=takes_burst)
        # Idempotent re-registration with replace=True is the supported
        # override path (and leaves the table unchanged here).
        register_workload("cpu", factory, takes_burst=takes_burst, replace=True)
        assert resolve_workload("cpu") == (factory, takes_burst)

    def test_app_factory_builds_an_app_bearing_spec(self):
        spec = resolve_app("three-tier")(burst="low", seed=0)
        assert spec.app is not None
        assert spec.app.name == "three-tier"
        assert spec.specs == ()


class TestRoutingRegistry:
    def test_builtins_and_default(self):
        assert set(registered_routings()) >= {
            "least_outstanding", "round_robin", "topology", "weighted_cpu",
        }
        assert DEFAULT_ROUTING == RoutingPolicy.WEIGHTED_CPU.value

    def test_resolution(self):
        assert resolve_routing("topology") is RoutingPolicy.TOPOLOGY
        # Already-resolved members pass through untouched.
        assert resolve_routing(RoutingPolicy.ROUND_ROBIN) is RoutingPolicy.ROUND_ROBIN
        with pytest.raises(ExperimentError, match="unknown routing policy"):
            resolve_routing("carrier-pigeon")

    def test_registration_guards(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_routing("round_robin", RoutingPolicy.ROUND_ROBIN)
        with pytest.raises(ExperimentError, match="RoutingPolicy member"):
            register_routing("bogus", "round_robin")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliAppSurface:
    def test_run_accepts_app_and_routing(self):
        args = build_parser().parse_args(
            ["run", "--app", "three-tier", "--routing", "topology"]
        )
        assert args.workload is None
        assert args.app == "three-tier"
        assert args.routing == "topology"

    def test_routing_defaults_to_the_registry_default(self):
        args = build_parser().parse_args(["run", "cpu"])
        assert args.routing == DEFAULT_ROUTING

    def test_unknown_app_and_routing_are_parser_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "cpu", "--routing", "nope"])
