"""Tests for configuration validation."""

import pytest

from repro.config import ClusterConfig, OverheadModel, PAPER_CONFIG, SimulationConfig
from repro.errors import ConfigError


class TestOverheadModel:
    def test_defaults_valid(self):
        OverheadModel().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("colocation_contention", -0.1),
            ("colocation_contention", 1.0),
            ("colocation_cap", 0.9),
            ("distribution_log_coeff", -1.0),
            ("container_base_memory", -5.0),
            ("container_background_cpu", -0.1),
            ("container_boot_delay", -1.0),
            ("swap_slowdown", 0.0),
            ("swap_slowdown", 1.5),
            ("oom_factor", 0.5),
            ("txq_penalty_max", 1.0),
            ("txq_penalty_half_rate", 0.0),
            ("txq_oversub_penalty", -0.1),
            ("net_cpu_per_mbit", -0.001),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        from dataclasses import replace

        with pytest.raises(ConfigError):
            replace(OverheadModel(), **{field: value}).validate()


class TestClusterConfig:
    def test_paper_shape(self):
        config = ClusterConfig()
        config.validate()
        # 24 machines total: 19 workers + 5 load balancers.
        assert config.worker_nodes + config.load_balancers == 24
        assert config.node_cpu == 4.0
        assert config.node_memory == 8192.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker_nodes": 0},
            {"load_balancers": 0},
            {"node_cpu": 0.0},
            {"node_memory": -1.0},
            {"node_network": 0.0},
        ],
    )
    def test_rejects_impossible(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs).validate()


class TestSimulationConfig:
    def test_paper_config_valid(self):
        PAPER_CONFIG.validate()

    def test_paper_intervals(self):
        # Section IV-A1: 5 s query, 3 s up, 50 s down.
        assert PAPER_CONFIG.monitor_period == 5.0
        assert PAPER_CONFIG.scale_up_interval == 3.0
        assert PAPER_CONFIG.scale_down_interval == 50.0

    def test_with_overrides_replaces(self):
        config = PAPER_CONFIG.with_overrides(seed=99, dt=0.25)
        assert config.seed == 99
        assert config.dt == 0.25
        assert PAPER_CONFIG.seed == 0  # original untouched

    def test_monitor_period_must_cover_a_step(self):
        with pytest.raises(ConfigError):
            SimulationConfig(dt=10.0, monitor_period=5.0).validate()

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigError):
            SimulationConfig(dt=0.0).validate()

    def test_rejects_negative_intervals(self):
        with pytest.raises(ConfigError):
            SimulationConfig(scale_up_interval=-1.0).validate()

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigError):
            SimulationConfig(request_timeout=0.0).validate()

    def test_nested_validation_propagates(self):
        with pytest.raises(ConfigError):
            SimulationConfig(cluster=ClusterConfig(worker_nodes=0)).validate()
