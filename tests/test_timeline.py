"""Tests for the text timeline renderer."""

import pytest

from repro.analysis.timeline import allocation_efficiency, render_timeline, sparkline
from repro.errors import ExperimentError
from repro.metrics.collector import TimelinePoint


def point(t, replicas=2, cpu=1.0, alloc=2.0, nodes=2):
    return TimelinePoint(
        time=t, total_replicas=replicas, cpu_usage=cpu, cpu_allocated=alloc,
        mem_usage=1024.0, mem_allocated=2048.0, net_usage=10.0, inflight=3,
        active_nodes=nodes, total_nodes=4,
    )


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline([1, 2, 3], width=40)) == 40

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(list(range(10)), width=10)
        assert list(line) == sorted(line, key=line.index)
        assert line[0] != line[-1]

    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0], width=10)
        assert len(set(line)) == 1

    def test_validation(self):
        with pytest.raises(ExperimentError):
            sparkline([])
        with pytest.raises(ExperimentError):
            sparkline([1.0], width=0)


class TestRenderTimeline:
    def test_contains_all_rows(self):
        timeline = [point(float(t), cpu=float(t % 5)) for t in range(20)]
        text = render_timeline(timeline)
        for label in ("replicas", "cpu used", "cpu allocated", "mem used", "net egress", "in flight", "nodes on"):
            assert label in text

    def test_ranges_shown(self):
        timeline = [point(0.0, cpu=1.0), point(10.0, cpu=3.0)]
        text = render_timeline(timeline)
        assert "1.00" in text and "3.00" in text

    def test_needs_two_samples(self):
        with pytest.raises(ExperimentError):
            render_timeline([point(0.0)])

    def test_nodes_row_omitted_for_legacy_timelines(self):
        timeline = [
            TimelinePoint(float(t), 1, 1.0, 2.0, 0.0, 0.0, 0.0, 0) for t in range(5)
        ]
        assert "nodes on" not in render_timeline(timeline)


class TestAllocationEfficiency:
    def test_mean_ratio(self):
        timeline = [point(0.0, cpu=1.0, alloc=2.0), point(1.0, cpu=2.0, alloc=2.0)]
        assert allocation_efficiency(timeline) == pytest.approx(0.75)

    def test_skips_zero_allocation(self):
        timeline = [point(0.0, cpu=1.0, alloc=2.0), point(1.0, cpu=0.0, alloc=0.0)]
        assert allocation_efficiency(timeline) == pytest.approx(0.5)

    def test_no_allocation_rejected(self):
        timeline = [point(0.0, cpu=0.0, alloc=0.0)]
        with pytest.raises(ExperimentError):
            allocation_efficiency(timeline)

    def test_end_to_end(self):
        from repro.experiments.configs import cpu_bound, make_policy
        from repro.experiments.runner import Simulation
        from dataclasses import replace

        spec = cpu_bound("low")
        small = replace(spec, duration=30.0, specs=spec.specs[:2], loads=spec.loads[:2])
        sim = Simulation.build(
            config=small.config, specs=list(small.specs), loads=list(small.loads),
            policy=make_policy("hybrid", small.config),
        )
        summary = sim.run(small.duration)
        text = render_timeline(summary.timeline)
        assert "replicas" in text
        assert 0.0 < allocation_efficiency(summary.timeline) <= 2.0


class TestLatencyRows:
    def test_window_stats_drained(self):
        from repro.metrics.collector import MetricsCollector
        from repro.workloads.requests import FailureReason, Request

        collector = MetricsCollector()
        ok = Request(service="s", arrival_time=0.0, cpu_work=0.1)
        ok.complete(2.0)
        bad = Request(service="s", arrival_time=0.0, cpu_work=0.1)
        bad.fail(1.0, FailureReason.CONNECTION)
        collector.record_requests([ok, bad])
        avg, completed, failed = collector.drain_window_stats()
        assert avg == pytest.approx(2.0)
        assert (completed, failed) == (1, 1)
        # Drained: the next window starts empty.
        assert collector.drain_window_stats() == (0.0, 0, 0)

    def test_latency_row_rendered_when_present(self):
        timeline = [
            TimelinePoint(float(t), 1, 1.0, 2.0, 0.0, 0.0, 0.0, 0, 1, 2,
                          window_avg_response=0.5 * t, window_completed=3, window_failed=0)
            for t in range(4)
        ]
        text = render_timeline(timeline)
        assert "latency" in text and "failures" in text

    def test_latency_row_omitted_when_no_completions(self):
        timeline = [point(float(t)) for t in range(4)]  # window_completed=0
        assert "latency" not in render_timeline(timeline)
