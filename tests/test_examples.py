"""Keep the examples honest: every script compiles; the fast ones run.

Examples rot silently when APIs move.  Each script must at least compile
against the current tree; the quick ones are executed end-to-end (stdout
captured) so their output paths stay exercised.
"""

import pathlib
import py_compile
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Scripts cheap enough to execute in the unit-test suite.
FAST_EXAMPLES = ("quickstart.py", "slo_watchdog.py")


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "flash_sale.py",
        "bitbrains_replay.py",
        "video_cdn_burst.py",
        "custom_policy.py",
        "chaos_day.py",
        "stateful_ledger.py",
        "capacity_planning.py",
        "slo_watchdog.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert "requests handled" in out


def test_every_example_has_module_docstring_with_run_line():
    """Each example documents how to run it."""
    for path in ALL_EXAMPLES:
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} missing docstring"
        assert f"python examples/{path.name}" in source, (
            f"{path.name} docstring missing its run command"
        )
