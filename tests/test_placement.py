"""Tests (incl. property-based) for placement strategies."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster.node import Node
from repro.cluster.placement import BinPackPlacement, RandomPlacement, SpreadPlacement
from repro.cluster.resources import ResourceVector

from tests.conftest import make_container


def node_with_load(name: str, used_cpu: float, overheads, service: str = "filler") -> Node:
    node = Node(name, ResourceVector(4.0, 8192.0, 1000.0), overheads)
    if used_cpu > 0:
        node.add_container(make_container(service, cpu=used_cpu, mem=256.0, net=10.0, overheads=overheads))
    return node


@pytest.fixture
def trio(overheads):
    return [
        node_with_load("n0", 3.0, overheads),
        node_with_load("n1", 1.0, overheads),
        node_with_load("n2", 2.0, overheads),
    ]


SMALL = ResourceVector(0.5, 128.0, 10.0)


class TestSpread:
    def test_picks_most_available(self, trio):
        assert SpreadPlacement().choose(trio, SMALL).name == "n1"

    def test_tie_broken_by_name(self, overheads):
        nodes = [node_with_load("b", 0.0, overheads), node_with_load("a", 0.0, overheads)]
        assert SpreadPlacement().choose(nodes, SMALL).name == "a"

    def test_excludes_service_hosts(self, trio):
        chosen = SpreadPlacement().choose(trio, SMALL, exclude_service="filler")
        assert chosen is None  # all three host 'filler'

    def test_none_when_nothing_fits(self, trio):
        huge = ResourceVector(10.0, 128.0, 10.0)
        assert SpreadPlacement().choose(trio, huge) is None


class TestBinPack:
    def test_picks_fullest_that_fits(self, trio):
        assert BinPackPlacement().choose(trio, SMALL).name == "n0"

    def test_skips_nodes_that_cannot_fit(self, trio):
        request = ResourceVector(1.5, 128.0, 10.0)
        assert BinPackPlacement().choose(trio, request).name == "n2"


class TestRandom:
    def test_deterministic_with_seeded_rng(self, trio):
        a = RandomPlacement(np.random.default_rng(1)).choose(trio, SMALL)
        b = RandomPlacement(np.random.default_rng(1)).choose(trio, SMALL)
        assert a.name == b.name

    def test_only_feasible_chosen(self, overheads):
        nodes = [node_with_load("full", 4.0, overheads), node_with_load("free", 0.0, overheads)]
        placement = RandomPlacement(np.random.default_rng(0))
        for _ in range(10):
            assert placement.choose(nodes, SMALL).name == "free"


class TestProperties:
    @given(
        loads=st.lists(st.floats(0.0, 4.0, allow_nan=False), min_size=1, max_size=8),
        cpu=st.floats(0.1, 4.0, allow_nan=False),
    )
    def test_chosen_node_always_fits(self, loads, cpu):
        from repro.config import OverheadModel

        overheads = OverheadModel(container_background_cpu=0.0)
        nodes = []
        for i, load in enumerate(loads):
            node = Node(f"n{i}", ResourceVector(4.0, 8192.0, 1000.0), overheads)
            if load > 0.05:
                node.add_container(
                    make_container("x", cpu=min(load, 4.0), mem=64.0, net=0.0, overheads=overheads),
                    enforce_capacity=False,
                )
            nodes.append(node)
        request = ResourceVector(cpu, 64.0, 0.0)
        for strategy in (SpreadPlacement(), BinPackPlacement()):
            chosen = strategy.choose(nodes, request)
            if chosen is not None:
                assert request.fits_within(chosen.available())
            else:
                assert all(not request.fits_within(n.available()) for n in nodes)
