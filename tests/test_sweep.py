"""Tests for the canonical run/sweep spec layer (``repro.experiments.spec``).

Covers the ``repro.sweep/1`` codec (every built-in load pattern, configs,
fleets), canonical-JSON stability, the documented shard-seed derivations,
grid construction, and the contract that the deprecated ``run_experiment``
shim forwards *exactly* to :class:`RunSpec`.
"""

import json
import warnings
from dataclasses import replace

import pytest

from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.experiments.configs import ALGORITHMS, cpu_bound
from repro.experiments.spec import (
    SEED_MODES,
    SWEEP_SCHEMA,
    RunSpec,
    SweepSpec,
    derive_shard_seed,
    pattern_from_dict,
    pattern_to_dict,
)
from repro.workloads.patterns import (
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    HighBurstLoad,
    LowBurstLoad,
    TraceLoad,
)


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def small_experiment(seed=0, n=2, duration=20.0):
    """A fast 2-service cell derived from the canonical cpu_bound cell."""
    spec = cpu_bound("low", seed=seed)
    return replace(spec, duration=duration, specs=spec.specs[:n], loads=spec.loads[:n])


# ----------------------------------------------------------------------
# Load-pattern codec
# ----------------------------------------------------------------------
PATTERNS = [
    ConstantLoad(rate=4.5),
    LowBurstLoad(base=8.0, amplitude=0.4, period=120.0, phase=30.0),
    HighBurstLoad(base=4.0, peak=20.0, period=150.0, duty=0.3, phase=10.0, ramp=6.0),
    DiurnalLoad(trough=2.0, peak=9.0, day_length=86400.0, peak_at=0.6, phase=100.0),
    FlashCrowdLoad(base=3.0, peak=30.0, onset=60.0, rise_tau=5.0, decay_tau=40.0),
    TraceLoad(times=(0.0, 10.0, 20.0), rates=(1.0, 5.0, 2.0), loop=True),
    CompositeLoad([ConstantLoad(rate=1.0), LowBurstLoad(base=2.0)]),
]


class TestPatternCodec:
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: type(p).__name__)
    def test_round_trip(self, pattern):
        encoded = pattern_to_dict(pattern)
        decoded = pattern_from_dict(json.loads(json.dumps(encoded)))
        assert type(decoded) is type(pattern)
        assert canonical(pattern_to_dict(decoded)) == canonical(encoded)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: type(p).__name__)
    def test_round_trip_preserves_rates(self, pattern):
        decoded = pattern_from_dict(pattern_to_dict(pattern))
        for t in (0.0, 7.0, 33.0, 121.0):
            assert decoded.rate(t) == pattern.rate(t)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ExperimentError):
            pattern_from_dict({"type": "lunar", "rate": 1.0})

    def test_foreign_pattern_rejected(self):
        class Custom:
            def rate(self, t):
                return 1.0

        with pytest.raises(ExperimentError):
            pattern_to_dict(Custom())


# ----------------------------------------------------------------------
# RunSpec codec + validation
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_round_trip_is_identity(self):
        spec = small_experiment(seed=3).to_run_spec("hybrid")
        document = json.loads(spec.canonical_json())
        assert document["schema"] == SWEEP_SCHEMA
        decoded = RunSpec.from_dict(document)
        # Load patterns are plain classes (no __eq__), so identity is
        # witnessed by the canonical encoding, plus the value fields.
        assert decoded.canonical_json() == spec.canonical_json()
        assert (decoded.label, decoded.policy, decoded.seed, decoded.duration) == (
            spec.label,
            spec.policy,
            spec.seed,
            spec.duration,
        )
        assert decoded.config == spec.config
        assert decoded.fleet == spec.fleet

    def test_canonical_json_is_byte_stable(self):
        spec = small_experiment().to_run_spec("kubernetes")
        assert spec.canonical_json() == spec.canonical_json()
        # Canonical form: sorted keys, no whitespace.
        assert ": " not in spec.canonical_json()

    def test_key_is_label_policy_seed(self):
        spec = small_experiment(seed=7).to_run_spec("hybrid")
        assert spec.key == "cpu/low-burst/hybrid/s7"

    def test_effective_config_pins_the_spec_seed(self):
        spec = small_experiment(seed=0).to_run_spec("hybrid", seed=99)
        assert spec.effective_config().seed == 99

    def test_rejects_policy_objects(self):
        from repro.core.hyscale import HyScaleCpu

        with pytest.raises(ExperimentError):
            RunSpec(label="x", policy=HyScaleCpu(), seed=0, duration=10.0)

    def test_rejects_bad_duration_and_label(self):
        with pytest.raises(ExperimentError):
            RunSpec(label="", policy="hybrid", seed=0, duration=10.0)
        with pytest.raises(ExperimentError):
            RunSpec(label="x", policy="hybrid", seed=0, duration=0.0)

    def test_rejects_wrong_schema_and_kind(self):
        spec = small_experiment().to_run_spec("hybrid")
        bad_schema = dict(spec.to_dict(), schema="repro.sweep/99")
        with pytest.raises(ExperimentError):
            RunSpec.from_dict(bad_schema)
        bad_kind = dict(spec.to_dict(), kind="sweep_spec")
        with pytest.raises(ExperimentError):
            RunSpec.from_dict(bad_kind)

    def test_run_executes_like_experiment_spec(self):
        experiment = small_experiment()
        direct = experiment.run("kubernetes")
        via_spec = experiment.to_run_spec("kubernetes").run()
        assert canonical(via_spec.to_dict()) == canonical(direct.to_dict())


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_shard_seed(0, "cpu/hybrid") == derive_shard_seed(0, "cpu/hybrid")

    def test_independent_across_names_and_bases(self):
        seeds = {
            derive_shard_seed(base, name)
            for base in (0, 1)
            for name in ("cpu/hybrid", "cpu/kubernetes", "net/hybrid")
        }
        assert len(seeds) == 6

    def test_to_sweep_shared_replays_the_base_seed(self):
        experiment = small_experiment(seed=5)
        sweep = experiment.to_sweep(("kubernetes", "hybrid"), seed_mode="shared")
        assert [s.seed for s in sweep.shards] == [5, 5]
        assert sweep.seed_mode == "shared"

    def test_to_sweep_per_shard_derives_distinct_seeds(self):
        experiment = small_experiment(seed=5)
        sweep = experiment.to_sweep(("kubernetes", "hybrid"))
        seeds = [s.seed for s in sweep.shards]
        assert len(set(seeds)) == 2
        assert seeds == [
            derive_shard_seed(5, f"{experiment.label}/kubernetes"),
            derive_shard_seed(5, f"{experiment.label}/hybrid"),
        ]

    def test_bad_seed_mode_rejected(self):
        with pytest.raises(ExperimentError):
            small_experiment().to_sweep(("hybrid",), seed_mode="lucky")

    def test_run_all_shared_matches_serial_per_algorithm_runs(self):
        experiment = small_experiment()
        historic = {name: experiment.run(name) for name in ("kubernetes", "hybrid")}
        via_sweep = experiment.run_all(("kubernetes", "hybrid"), seed_mode="shared")
        assert {k: canonical(v.to_dict()) for k, v in via_sweep.items()} == {
            k: canonical(v.to_dict()) for k, v in historic.items()
        }

    def test_run_all_per_shard_changes_the_arrival_sequence(self):
        experiment = small_experiment()
        shared = experiment.run_all(("kubernetes",), seed_mode="shared")
        per_shard = experiment.run_all(("kubernetes",), seed_mode="per_shard")
        assert (
            shared["kubernetes"].total_requests != per_shard["kubernetes"].total_requests
            or shared["kubernetes"].to_dict() != per_shard["kubernetes"].to_dict()
        )


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_from_grid_shapes_and_order(self):
        sweep = SweepSpec.from_grid(
            ("cpu", "network"),
            bursts=("low", "high"),
            algorithms=("kubernetes", "hybrid"),
            duration=30.0,
        )
        assert len(sweep) == 8
        labels = [shard.label for shard in sweep.shards]
        # Grid order: workload, then burst, then algorithm.
        assert labels == (
            ["cpu/low-burst"] * 2 + ["cpu/high-burst"] * 2
            + ["network/low-burst"] * 2 + ["network/high-burst"] * 2
        )
        assert all(shard.duration == 30.0 for shard in sweep.shards)

    def test_from_grid_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec.from_grid(("quantum",))

    def test_round_trip(self):
        sweep = small_experiment().to_sweep(ALGORITHMS)
        decoded = SweepSpec.from_dict(json.loads(sweep.canonical_json()))
        assert decoded.canonical_json() == sweep.canonical_json()
        assert decoded.keys == sweep.keys
        assert decoded.seed_mode == sweep.seed_mode

    def test_duplicate_shards_rejected(self):
        shard = small_experiment().to_run_spec("hybrid")
        with pytest.raises(ExperimentError):
            SweepSpec(shards=(shard, shard))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(shards=())

    def test_seed_modes_constant(self):
        assert SEED_MODES == ("per_shard", "shared")


# ----------------------------------------------------------------------
# The deprecated shim forwards exactly
# ----------------------------------------------------------------------
class TestRunExperimentShim:
    def test_warns_and_forwards_exactly(self):
        from repro.experiments.runner import run_experiment

        experiment = small_experiment()
        with pytest.warns(DeprecationWarning):
            shimmed = run_experiment(
                config=experiment.config,
                specs=list(experiment.specs),
                loads=list(experiment.loads),
                policy="hybrid",
                duration=experiment.duration,
                workload_label=experiment.label,
            )
        canonical_run = experiment.to_run_spec("hybrid").run()
        assert canonical(shimmed.to_dict()) == canonical(canonical_run.to_dict())

    def test_policy_objects_still_run(self):
        from repro.core.hyscale import HyScaleCpu
        from repro.experiments.runner import run_experiment

        experiment = small_experiment()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            summary = run_experiment(
                config=experiment.config,
                specs=list(experiment.specs),
                loads=list(experiment.loads),
                policy=HyScaleCpu(),
                duration=experiment.duration,
                workload_label=experiment.label,
            )
        assert summary.algorithm == "hybrid"
        assert summary.total_requests > 0
