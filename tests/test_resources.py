"""Tests (incl. property-based) for ResourceVector arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.resources import AXES, ResourceVector

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
vectors = st.builds(ResourceVector, finite, finite, finite)
nonneg_vectors = st.builds(ResourceVector, nonneg, nonneg, nonneg)


class TestArithmetic:
    def test_add_sub(self):
        a = ResourceVector(1.0, 100.0, 10.0)
        b = ResourceVector(0.5, 50.0, 5.0)
        assert a + b == ResourceVector(1.5, 150.0, 15.0)
        assert a - b == ResourceVector(0.5, 50.0, 5.0)

    def test_scalar_multiply_both_sides(self):
        v = ResourceVector(1.0, 2.0, 3.0)
        assert 2 * v == v * 2 == ResourceVector(2.0, 4.0, 6.0)

    def test_negation(self):
        assert -ResourceVector(1.0, -2.0, 3.0) == ResourceVector(-1.0, 2.0, -3.0)

    def test_iteration_order(self):
        assert list(ResourceVector(1.0, 2.0, 3.0)) == [1.0, 2.0, 3.0]

    def test_sum(self):
        vs = [ResourceVector(1, 1, 1), ResourceVector(2, 2, 2)]
        assert ResourceVector.sum(vs) == ResourceVector(3, 3, 3)

    def test_sum_empty_is_zero(self):
        assert ResourceVector.sum([]) == ResourceVector.zero()

    @given(vectors, vectors)
    def test_add_commutes(self, a, b):
        assert (a + b).cpu == pytest.approx((b + a).cpu)
        assert (a + b).memory == pytest.approx((b + a).memory)

    @given(vectors)
    def test_sub_self_is_zero(self, v):
        assert (v - v).is_zero(tolerance=1e-6)


class TestCombinators:
    def test_clamp_floor(self):
        v = ResourceVector(-1.0, 5.0, -0.1)
        assert v.clamp_floor() == ResourceVector(0.0, 5.0, 0.0)

    def test_elementwise_min_max(self):
        a = ResourceVector(1, 5, 3)
        b = ResourceVector(2, 4, 3)
        assert a.elementwise_min(b) == ResourceVector(1, 4, 3)
        assert a.elementwise_max(b) == ResourceVector(2, 5, 3)

    def test_with_axis(self):
        v = ResourceVector(1, 2, 3).with_axis("memory", 9)
        assert v == ResourceVector(1, 9, 3)

    def test_axis_lookup(self):
        v = ResourceVector(1, 2, 3)
        assert [v.axis(a) for a in AXES] == [1, 2, 3]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector().axis("disk")
        with pytest.raises(ValueError):
            ResourceVector().with_axis("disk", 1.0)

    @given(vectors, vectors)
    def test_min_is_lower_bound(self, a, b):
        low = a.elementwise_min(b)
        assert low.fits_within(a) and low.fits_within(b)


class TestPredicates:
    def test_fits_within(self):
        assert ResourceVector(1, 1, 1).fits_within(ResourceVector(1, 1, 1))
        assert not ResourceVector(1.1, 1, 1).fits_within(ResourceVector(1, 1, 1))

    def test_is_nonnegative(self):
        assert ResourceVector(0, 0, 0).is_nonnegative()
        assert not ResourceVector(-0.1, 0, 0).is_nonnegative()

    def test_utilization_of(self):
        usage = ResourceVector(2.0, 4096.0, 500.0)
        cap = ResourceVector(4.0, 8192.0, 1000.0)
        u = usage.utilization_of(cap)
        assert u == ResourceVector(0.5, 0.5, 0.5)

    def test_utilization_of_zero_capacity(self):
        u = ResourceVector(1, 1, 1).utilization_of(ResourceVector.zero())
        assert u == ResourceVector.zero()

    @given(nonneg_vectors, nonneg_vectors)
    def test_clamped_difference_fits_in_minuend(self, a, b):
        # (a - b) clamped at zero always fits inside a.
        assert (a - b).clamp_floor().fits_within(a, tolerance=1e-6)
