"""Tests for the distributed load-balancer tier."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.microservice import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.errors import ClusterError
from repro.platform.lb_tier import LoadBalancerTier
from repro.platform.load_balancer import RoutingPolicy
from repro.platform.registry import ServiceRegistry
from repro.sim.clock import SimClock
from repro.workloads.requests import Request

from tests.conftest import make_container


@pytest.fixture
def setup(overheads):
    cluster = Cluster(overheads)
    cluster.add_node(Node("n0", ResourceVector(8.0, 16384.0, 1000.0), overheads))
    cluster.register_service(MicroserviceSpec(name="svc"))
    registry = ServiceRegistry(cluster)
    failures = []
    tier = LoadBalancerTier(
        registry, overheads, failure_sink=failures.append,
        policy=RoutingPolicy.ROUND_ROBIN, n_balancers=3,
    )
    return cluster, registry, tier, failures


def request(timeout=30.0):
    return Request(service="svc", arrival_time=0.0, cpu_work=1.0, timeout=timeout)


class TestSharding:
    def test_sticky_by_request_id(self, setup):
        _, _, tier, _ = setup
        r = request()
        assert tier.shard_of(r) == tier.shard_of(r)
        assert 0 <= tier.shard_of(r) < 3

    def test_requests_spread_over_proxies(self, setup):
        cluster, _, tier, _ = setup
        replica = make_container("svc")
        cluster.node("n0").add_container(replica, enforce_capacity=False)
        cluster.service("svc").track(replica)
        for _ in range(30):
            tier.submit(request())
        routed = [b.total_routed for b in tier.balancers]
        assert sum(routed) == 30
        assert all(count > 0 for count in routed)

    def test_single_proxy_tier_equals_plain_lb(self, overheads):
        cluster = Cluster(overheads)
        cluster.add_node(Node("n0", ResourceVector(8.0, 16384.0, 1000.0), overheads))
        cluster.register_service(MicroserviceSpec(name="svc"))
        registry = ServiceRegistry(cluster)
        tier = LoadBalancerTier(registry, overheads, failure_sink=lambda r: None, n_balancers=1)
        assert tier.shard_of(request()) == 0

    def test_validation(self, setup):
        _, registry, _, _ = setup
        from repro.config import OverheadModel

        with pytest.raises(ClusterError):
            LoadBalancerTier(registry, OverheadModel(), failure_sink=lambda r: None, n_balancers=0)


class TestAggregation:
    def test_backlog_and_rejections_aggregate(self, setup):
        _, _, tier, failures = setup
        for _ in range(6):
            tier.submit(request(timeout=2.0))
        assert tier.backlog() == 6  # no replicas yet
        clock = SimClock(dt=1.0)
        for _ in range(3):
            clock.advance()
            tier.on_step(clock)
        assert tier.backlog() == 0
        assert tier.total_rejected == 6
        assert len(failures) == 6

    def test_backlogs_drain_per_proxy(self, setup):
        cluster, _, tier, _ = setup
        for _ in range(9):
            tier.submit(request(timeout=60.0))
        replica = make_container("svc")
        cluster.node("n0").add_container(replica, enforce_capacity=False)
        cluster.service("svc").track(replica)
        clock = SimClock(dt=1.0)
        clock.advance()
        tier.on_step(clock)
        assert tier.backlog() == 0
        assert len(replica.inflight) == 9

    def test_delegated_overheads(self, setup):
        _, _, tier, _ = setup
        assert tier.distribution_overhead(1) == pytest.approx(1.0)
        assert tier.consistency_overhead(3) >= 1.0
        assert tier.policy is RoutingPolicy.ROUND_ROBIN

    def test_round_robin_state_is_per_proxy(self, setup):
        """Independent proxies keep independent counters — the realistic
        imperfection a distributed tier introduces."""
        cluster, _, tier, _ = setup
        a = make_container("svc")
        b = make_container("svc")
        for replica in (a, b):
            cluster.node("n0").add_container(replica, enforce_capacity=False)
            cluster.service("svc").track(replica)
        # Submit requests that all land on distinct proxies: each proxy's
        # first round-robin pick is the same first replica.
        picks = []
        for _ in range(3):
            r = request()
            shard_before = [x.total_routed for x in tier.balancers]
            tier.submit(r)
        # Each proxy started its rotation at index 0 independently.
        assert len(a.inflight) >= len(b.inflight)
